// FaultCampaign contract tests: config validation, grid expansion order,
// outcome classification, the determinism guarantees the campaign report
// rides on (byte-identical at any thread count; zero-intensity cells
// bitwise equal to un-faulted fleet runs) and the independence of the
// fault-draw stream from the instrument-noise stream.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/scenario_library.hpp"
#include "system/fault_campaign.hpp"
#include "system/fleet.hpp"

namespace {

using namespace ob;
using system::FaultCampaign;
using system::FaultCampaignConfig;
using system::FaultOutcome;
using system::FaultType;
using system::FleetJob;
using system::FleetRunner;
using system::FleetSeedResult;
using Processor = system::BoresightSystem::Processor;

/// Smallest meaningful campaign: one scenario past its envelope settle,
/// native only, a starvation fault and a stuck fault, one zero-intensity
/// control rung. Everything below keys off this grid.
FaultCampaignConfig small_config() {
    FaultCampaignConfig cfg;
    cfg.scenarios = {"static-level"};
    cfg.faults = {FaultType::kUartDropout, FaultType::kAccStuck};
    cfg.intensities = {0.0, 0.3};
    cfg.processors = {Processor::kNative};
    cfg.seeds_per_cell = 2;
    cfg.duration_s = 130.0;  // static-level settles at 120 s
    return cfg;
}

// --- validation --------------------------------------------------------------

TEST(FaultCampaignConfig, RejectsBadAxes) {
    const auto expect_throw = [](auto&& mutate) {
        auto cfg = small_config();
        mutate(cfg);
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
    };
    expect_throw([](auto& c) { c.label.clear(); });
    expect_throw([](auto& c) { c.scenarios.clear(); });
    expect_throw([](auto& c) { c.scenarios = {"no-such-scenario"}; });
    expect_throw([](auto& c) { c.faults.clear(); });
    expect_throw([](auto& c) {
        c.faults = {FaultType::kAccStuck, FaultType::kAccStuck};
    });
    expect_throw([](auto& c) { c.intensities.clear(); });
    expect_throw([](auto& c) { c.intensities = {0.0, 1.5}; });
    expect_throw([](auto& c) { c.intensities = {-0.1, 0.5}; });
    expect_throw([](auto& c) { c.intensities = {0.3, 0.3}; });  // not strict
    expect_throw([](auto& c) { c.intensities = {0.3, 0.1}; });
    expect_throw([](auto& c) { c.processors.clear(); });
    expect_throw([](auto& c) { c.seeds_per_cell = 0; });
    expect_throw([](auto& c) { c.duration_s = -1.0; });
    expect_throw([](auto& c) { c.burst_frames = 0; });
    expect_throw([](auto& c) { c.boundary_tolerance = -0.01; });
    expect_throw([](auto& c) {
        c.boundary_tolerance = 0.05;
        c.boundary_max_probes = 0;
    });
    EXPECT_NO_THROW(small_config().validate());
    // A zero probe budget is fine while the search itself is off.
    auto off = small_config();
    off.boundary_max_probes = 0;
    EXPECT_NO_THROW(off.validate());
}

TEST(FaultCampaign, ExpandsScenarioMajorGrid) {
    auto cfg = small_config();
    cfg.processors = {Processor::kNative, Processor::kSabre};
    const FaultCampaign campaign(cfg);
    // scenario-major, then fault, intensity, processor.
    ASSERT_EQ(campaign.cell_count(), 1u * 2u * 2u * 2u);
    const auto& jobs = campaign.jobs();
    EXPECT_EQ(jobs[0].processor, Processor::kNative);
    EXPECT_EQ(jobs[1].processor, Processor::kSabre);
    for (const auto& job : jobs) {
        EXPECT_EQ(job.scenario, "static-level");
        EXPECT_FALSE(job.use_adaptive_tuner);
        EXPECT_EQ(job.seeds_per_job, cfg.seeds_per_cell);
        // The fault axis is always materialized, even at intensity zero.
        ASSERT_TRUE(job.fault.has_value());
    }
    EXPECT_EQ(jobs[0].fault->type, FaultType::kUartDropout);
    EXPECT_EQ(jobs[0].fault->intensity, 0.0);
    EXPECT_EQ(jobs[2].fault->intensity, 0.3);
    EXPECT_EQ(jobs[4].fault->type, FaultType::kAccStuck);
}

// --- outcome classification --------------------------------------------------

TEST(FaultOutcomes, ClassifiesAllFourQuadrants) {
    FleetSeedResult s;
    s.trace.first_divergence_s = -1.0;
    s.final_status.residual_flagged = false;
    EXPECT_EQ(classify_fault_outcome(s), FaultOutcome::kTrueNegative);
    s.final_status.residual_flagged = true;
    EXPECT_EQ(classify_fault_outcome(s), FaultOutcome::kFalseAlarm);
    s.trace.first_divergence_s = 125.0;
    EXPECT_EQ(classify_fault_outcome(s), FaultOutcome::kDetection);
    s.final_status.residual_flagged = false;
    EXPECT_EQ(classify_fault_outcome(s), FaultOutcome::kMiss);
    // Divergence at t=0 exactly still counts as diverged.
    s.trace.first_divergence_s = 0.0;
    EXPECT_EQ(classify_fault_outcome(s), FaultOutcome::kMiss);

    EXPECT_STREQ(fault_outcome_name(FaultOutcome::kDetection), "detection");
    EXPECT_STREQ(fault_outcome_name(FaultOutcome::kMiss), "miss");
    EXPECT_STREQ(fault_outcome_name(FaultOutcome::kFalseAlarm),
                 "false-alarm");
    EXPECT_STREQ(fault_outcome_name(FaultOutcome::kTrueNegative),
                 "true-negative");
}

/// The campaign detector is the OR of the two independent alarms: a
/// diverged realization the residual monitor never saw (starvation) is
/// still a detection when the supervisor's liveness alarm latched.
TEST(FaultOutcomes, SupervisorAlarmAloneCountsAsDetection) {
    FleetSeedResult s;
    s.trace.first_divergence_s = 100.0;
    s.final_status.residual_flagged = false;
    s.final_status.supervisor_alarmed = true;
    EXPECT_EQ(classify_fault_outcome(s), FaultOutcome::kDetection);
    s.trace.first_divergence_s = -1.0;
    EXPECT_EQ(classify_fault_outcome(s), FaultOutcome::kFalseAlarm);
    s.final_status.supervisor_alarmed = false;
    EXPECT_EQ(classify_fault_outcome(s), FaultOutcome::kTrueNegative);
}

/// Detection time is the earliest fired alarm across both detectors.
TEST(FaultOutcomes, DetectionTimeIsTheEarliestAlarm) {
    FleetSeedResult s;
    EXPECT_DOUBLE_EQ(system::fault_detection_time_s(s), -1.0);
    s.final_status.residual_flagged = true;
    s.final_status.residual_flag_s = 40.0;
    EXPECT_DOUBLE_EQ(system::fault_detection_time_s(s), 40.0);
    s.final_status.supervisor_alarmed = true;
    s.final_status.supervisor_alarm_s = 12.5;
    EXPECT_DOUBLE_EQ(system::fault_detection_time_s(s), 12.5);
    s.final_status.supervisor_alarm_s = 90.0;
    EXPECT_DOUBLE_EQ(system::fault_detection_time_s(s), 40.0);
    s.final_status.residual_flagged = false;
    EXPECT_DOUBLE_EQ(system::fault_detection_time_s(s), 90.0);
}

// --- determinism -------------------------------------------------------------

TEST(FaultCampaign, ReportBytesIdenticalAcrossThreadCounts) {
    const FaultCampaign campaign(small_config());
    const FleetRunner serial(FleetRunner::Config{.threads = 1});
    const FleetRunner pooled(FleetRunner::Config{.threads = 8});
    const auto a = campaign.run(serial).to_json();
    const auto b = campaign.run(pooled).to_json();
    EXPECT_EQ(a, b) << "campaign report must not depend on scheduling";
}

/// The grid on which static-level acc-stuck demonstrates a boundary (a
/// miss at 0.14, a clean detection at 0.40 — measured, stable under the
/// deterministic seed contract). Bisection must refine it inside the rung
/// bracket, converge within tolerance, and stay byte-identical however
/// the probe batches were scheduled.
FaultCampaignConfig boundary_config() {
    FaultCampaignConfig cfg;
    cfg.scenarios = {"static-level"};
    cfg.faults = {FaultType::kAccStuck};
    cfg.intensities = {0.14, 0.4};
    cfg.processors = {Processor::kNative};
    cfg.seeds_per_cell = 3;
    cfg.duration_s = 150.0;
    cfg.boundary_tolerance = 0.02;
    cfg.boundary_max_probes = 8;
    return cfg;
}

TEST(FaultBoundarySearch, BisectsInsideTheRungBracketAndConverges) {
    const auto cfg = boundary_config();
    const FaultCampaign campaign(cfg);
    const FleetRunner serial(FleetRunner::Config{.threads = 1});
    const auto report = campaign.run(serial);

    ASSERT_EQ(report.boundaries.size(), 1u);
    ASSERT_TRUE(report.boundaries[0].boundary_demonstrated);
    ASSERT_EQ(report.refinements.size(), 1u);
    const auto& r = report.refinements[0];
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.probes.size(), cfg.boundary_max_probes);
    EXPECT_GE(r.probes.size(), 1u);
    // Both edges live strictly inside the rung bracket, in the measured
    // orientation (miss region below the clean-detection region), and the
    // final bracket is within tolerance.
    EXPECT_FALSE(r.miss_region_above);
    EXPECT_GE(r.miss_edge, 0.14);
    EXPECT_LE(r.detect_edge, 0.4);
    EXPECT_LT(r.miss_edge, r.detect_edge);
    EXPECT_LE(r.detect_edge - r.miss_edge, cfg.boundary_tolerance);
    // Every probe sits inside the original bracket, and each one moved
    // exactly one edge: probes with misses set the miss edge, the rest
    // the detect edge.
    for (const auto& p : r.probes) {
        EXPECT_GT(p.intensity, 0.14);
        EXPECT_LT(p.intensity, 0.4);
        EXPECT_GT(p.epochs, 0u);
        EXPECT_EQ(p.outcomes.seeds, cfg.seeds_per_cell);
    }
}

TEST(FaultBoundarySearch, RefinementIsByteIdenticalAcrossThreadCounts) {
    const FaultCampaign campaign(boundary_config());
    const FleetRunner serial(FleetRunner::Config{.threads = 1});
    const FleetRunner pooled(FleetRunner::Config{.threads = 8});
    const auto a = campaign.run(serial).to_json();
    const auto b = campaign.run(pooled).to_json();
    EXPECT_EQ(a, b) << "bisection must not depend on probe scheduling";
    EXPECT_NE(a.find("\"boundary_search\""), std::string::npos);
}

/// PR-6's dangerous quadrant: a heavy uart dropout on a moving platform
/// diverges the estimate while starving the residual monitor blind. The
/// supervisor's liveness alarm must reclassify it as a detection, carried
/// by the supervisor column.
TEST(FaultCampaign, SupervisorConvertsStarvationMissesIntoDetections) {
    FaultCampaignConfig cfg;
    cfg.scenarios = {"city-drive"};
    cfg.faults = {FaultType::kUartDropout};
    cfg.intensities = {0.4};
    cfg.processors = {Processor::kNative};
    cfg.seeds_per_cell = 3;
    cfg.duration_s = 150.0;
    const FaultCampaign campaign(cfg);
    const FleetRunner runner(FleetRunner::Config{.threads = 2});
    const auto report = campaign.run(runner);

    ASSERT_EQ(report.cells.size(), 1u);
    const auto& o = report.cells[0].outcomes;
    EXPECT_EQ(o.misses, 0u) << "the silent-miss quadrant must be closed";
    EXPECT_EQ(o.detections, cfg.seeds_per_cell);
    EXPECT_EQ(o.supervisor_detections, cfg.seeds_per_cell);
    for (const auto& s : report.cells[0].result.seeds) {
        EXPECT_TRUE(s.final_status.supervisor_alarmed);
        EXPECT_GE(s.final_status.worst_health,
                  system::HealthState::kCoasting);
        EXPECT_LT(s.final_status.dmu_delivery_rate, 0.9);
    }
    // The per-detector columns partition nothing — they overlap — but
    // each is bounded by the detections row they annotate.
    EXPECT_LE(o.residual_detections, o.detections);
    EXPECT_LE(o.supervisor_detections, o.detections);
}

TEST(FaultCampaign, ZeroIntensityCellsMatchUnfaultedFleetRuns) {
    const auto cfg = small_config();
    const FaultCampaign campaign(cfg);
    const FleetRunner runner(FleetRunner::Config{.threads = 2});
    const auto report = campaign.run(runner);

    for (const auto& cell : report.cells) {
        if (cfg.intensities[cell.intensity_index] > 0.0) continue;
        // The exact same job with the fault axis absent entirely.
        FleetJob job;
        job.scenario = cfg.scenarios[cell.scenario_index];
        job.processor = cfg.processors[cell.processor_index];
        job.base_seed = cfg.base_seed;
        job.duration_s = cfg.duration_s;
        job.seeds_per_job = cfg.seeds_per_cell;
        const auto plain = system::run_fleet_job(job);

        const auto& faulted = cell.result;
        ASSERT_EQ(faulted.seeds.size(), plain.seeds.size());
        for (std::size_t i = 0; i < plain.seeds.size(); ++i) {
            const auto& f = faulted.seeds[i];
            const auto& p = plain.seeds[i];
            EXPECT_EQ(f.sensor_seed, p.sensor_seed);
            // Bitwise equality: a zero-intensity cell must be the
            // un-faulted run, not merely close to it.
            EXPECT_EQ(f.result.estimate.roll, p.result.estimate.roll);
            EXPECT_EQ(f.result.estimate.pitch, p.result.estimate.pitch);
            EXPECT_EQ(f.result.estimate.yaw, p.result.estimate.yaw);
            EXPECT_EQ(f.result.residual_rms, p.result.residual_rms);
            EXPECT_EQ(f.trace.epochs, p.trace.epochs);
            EXPECT_EQ(f.trace.worst_roll_err_deg, p.trace.worst_roll_err_deg);
            EXPECT_EQ(f.trace.worst_pitch_err_deg,
                      p.trace.worst_pitch_err_deg);
            EXPECT_EQ(f.trace.first_divergence_s, p.trace.first_divergence_s);
            EXPECT_EQ(f.trace.fault_window_duration_s, 0.0);
            EXPECT_EQ(f.final_status.updates, p.final_status.updates);
            EXPECT_EQ(f.final_status.dmu_frames_lost,
                      p.final_status.dmu_frames_lost);
            EXPECT_EQ(f.final_status.acc_packets_lost,
                      p.final_status.acc_packets_lost);
            EXPECT_EQ(f.final_status.residual_flagged,
                      p.final_status.residual_flagged);
            EXPECT_EQ(f.final_status.residual_exceedances,
                      p.final_status.residual_exceedances);
            EXPECT_EQ(f.within_envelope, p.within_envelope);
        }
    }
}

// --- fault-stream independence ----------------------------------------------

/// Arming a stuck-sensor fault must not consume instrument-noise draws:
/// the faulted realization's samples are bitwise identical outside the
/// frozen window, including AFTER it ends (the model keeps drawing during
/// the freeze; only the analog registers are held).
TEST(FaultStream, StuckFaultLeavesInstrumentStreamUntouched) {
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    const std::uint64_t seed = sim::scenario_seed(spec.name, 2026);
    sim::Scenario plain(spec.build(20.0, spec.misalignment, seed), seed);
    sim::Scenario faulted(spec.build(20.0, spec.misalignment, seed), seed);
    const sim::SensorFault fault{.start_s = 5.0, .duration_s = 3.0};
    faulted.inject_imu_fault(fault);
    faulted.inject_acc_fault(fault);

    double tp = 0.0, tf = 0.0;
    comm::DmuSample dp, df;
    comm::AdxlTiming ap, af;
    std::size_t inside = 0, outside = 0;
    while (plain.next_wire(tp, dp, ap)) {
        ASSERT_TRUE(faulted.next_wire(tf, df, af));
        ASSERT_EQ(tp, tf);
        // Sequence numbers and timestamps stay live even while frozen —
        // the wire protocol never reveals the fault.
        EXPECT_EQ(dp.seq, df.seq);
        EXPECT_EQ(ap.seq, af.seq);
        if (fault.active(tp)) {
            ++inside;
            continue;  // analog registers held; values may differ
        }
        ++outside;
        EXPECT_EQ(dp, df) << "t=" << tp;
        EXPECT_TRUE(ap == af) << "t=" << tp;
    }
    EXPECT_FALSE(faulted.next_wire(tf, df, af));
    ASSERT_GT(inside, 0u);
    ASSERT_GT(outside, 0u);
}

/// The frozen window is drawn from the per-realization fault stream, so
/// two Monte Carlo realizations of one cell freeze at different times,
/// and the window always starts inside the post-settle stretch.
TEST(FaultStream, StuckWindowsVaryPerRealizationWithinPostSettle) {
    FaultCampaignConfig cfg = small_config();
    cfg.faults = {FaultType::kAccStuck};
    cfg.intensities = {0.05};
    cfg.seeds_per_cell = 3;
    const FaultCampaign campaign(cfg);
    const FleetRunner runner(FleetRunner::Config{.threads = 1});
    const auto report = campaign.run(runner);
    ASSERT_EQ(report.cells.size(), 1u);
    const auto& seeds = report.cells[0].result.seeds;
    ASSERT_EQ(seeds.size(), 3u);
    const double settle =
        sim::ScenarioLibrary::instance().at("static-level").envelope.settle_s;
    for (const auto& s : seeds) {
        EXPECT_NEAR(s.trace.fault_window_duration_s,
                    0.05 * cfg.duration_s, 1e-12);
        EXPECT_GE(s.trace.fault_window_start_s, settle);
        EXPECT_LE(s.trace.fault_window_start_s, cfg.duration_s);
    }
    EXPECT_NE(seeds[0].trace.fault_window_start_s,
              seeds[1].trace.fault_window_start_s);
    EXPECT_NE(seeds[1].trace.fault_window_start_s,
              seeds[2].trace.fault_window_start_s);
}

}  // namespace
