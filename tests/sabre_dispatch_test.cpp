#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "comm/codec.hpp"
#include "math/rotation.hpp"
#include "sabre/assembler.hpp"
#include "sabre/cpu.hpp"
#include "sabre/firmware.hpp"
#include "sim/scenario_library.hpp"
#include "system/sabre_runner.hpp"
#include "util/rng.hpp"

// Differential tests of the predecoded cached-dispatch path against the
// reference per-step interpreter: on randomized instruction streams and on
// the real boresight firmware, architectural state (registers, data
// memory, cycles, retired count, trace-hook call sequence, trap behaviour)
// must be bit-identical between the two dispatch modes.

namespace {

using namespace ob;
using namespace ob::sabre;
using ob::util::Rng;

struct TraceEvent {
    std::uint32_t pc;
    Instruction ins;
    friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

struct RunOutcome {
    std::vector<std::uint32_t> regs;
    std::vector<std::uint32_t> data;  ///< sampled data words
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    std::uint32_t pc = 0;
    bool halted = false;
    std::optional<std::string> trap;
    std::vector<TraceEvent> trace;
};

/// Run `program` to completion (or trap, or the cycle budget) in the given
/// mode and capture every architectural observable.
RunOutcome execute(const Program& program, DispatchMode mode,
                   std::uint64_t max_cycles = 200'000) {
    SabreCpu cpu(program, mode);
    RunOutcome out;
    cpu.set_trace([&](std::uint32_t pc, const Instruction& ins) {
        out.trace.push_back({pc, ins});
    });
    try {
        cpu.run(max_cycles);
    } catch (const SabreTrap& trap) {
        out.trap = trap.what();
    }
    for (std::size_t i = 0; i < kNumRegisters; ++i)
        out.regs.push_back(cpu.reg(i));
    for (std::uint32_t addr = 0; addr < 0x400; addr += 4)
        out.data.push_back(cpu.load_data(addr));
    out.cycles = cpu.cycles();
    out.retired = cpu.instructions();
    out.pc = cpu.pc();
    out.halted = cpu.halted();
    return out;
}

void expect_identical(const RunOutcome& cached, const RunOutcome& interp) {
    EXPECT_EQ(cached.regs, interp.regs);
    EXPECT_EQ(cached.data, interp.data);
    EXPECT_EQ(cached.cycles, interp.cycles);
    EXPECT_EQ(cached.retired, interp.retired);
    EXPECT_EQ(cached.pc, interp.pc);
    EXPECT_EQ(cached.halted, interp.halted);
    EXPECT_EQ(cached.trap, interp.trap);
    ASSERT_EQ(cached.trace.size(), interp.trace.size());
    EXPECT_EQ(cached.trace, interp.trace);
}

/// Random-but-structured program: straight-line arithmetic/logic over all
/// R/I ops, loads and stores against an in-range buffer, short forward
/// branches of every flavour, the occasional call/ret pair, and a bounded
/// countdown loop — every control transfer stays in-program so streams
/// run to halt deterministically.
std::string random_program(Rng& rng) {
    std::string src;
    src += "li sp, 0x10000\n";
    src += "addi r1, zero, 0x200\n";  // data buffer base
    const char* rops[] = {"add", "sub", "and", "or",  "xor", "sll",
                          "srl", "sra", "mul", "slt", "sltu"};
    // I-type ops and whether their imm18 is unsigned (logical/shift) or
    // sign-extended — the encoder rejects a negative unsigned immediate.
    struct IOp {
        const char* name;
        bool unsigned_imm;
    };
    const IOp iops[] = {{"addi", false}, {"andi", true}, {"ori", true},
                        {"xori", true},  {"slli", true}, {"srli", true},
                        {"srai", true},  {"slti", false}};
    const char* bops[] = {"beq", "bne", "blt", "bge", "bltu", "bgeu"};
    char line[80];
    const int body = 120;
    for (int i = 0; i < body; ++i) {
        // r2..r11 are fuzz registers; r1 stays the buffer base.
        const auto rd = static_cast<int>(rng.uniform_int(2, 11));
        const auto ra = static_cast<int>(rng.uniform_int(2, 11));
        const auto rb = static_cast<int>(rng.uniform_int(2, 11));
        const double roll = rng.uniform(0.0, 1.0);
        if (roll < 0.45) {
            std::snprintf(line, sizeof line, "%s r%d, r%d, r%d",
                          rops[rng.uniform_int(0, 10)], rd, ra, rb);
        } else if (roll < 0.70) {
            const IOp& op = iops[rng.uniform_int(0, 7)];
            const int imm =
                op.unsigned_imm
                    ? static_cast<int>(rng.uniform_int(0, 1000))
                    : static_cast<int>(rng.uniform_int(-500, 500));
            std::snprintf(line, sizeof line, "%s r%d, r%d, %d", op.name, rd,
                          ra, imm);
        } else if (roll < 0.82) {
            const int off = static_cast<int>(rng.uniform_int(0, 63)) * 4;
            if (rng.chance(0.5))
                std::snprintf(line, sizeof line, "sw r%d, %d(r1)", rd, off);
            else
                std::snprintf(line, sizeof line, "lw r%d, %d(r1)", rd, off);
        } else if (roll < 0.94) {
            // Forward branch over the next instruction: always in-program.
            std::snprintf(line, sizeof line, "%s r%d, r%d, 1\naddi r%d, r%d, 7",
                          bops[rng.uniform_int(0, 5)], ra, rb, rd, rd);
        } else {
            std::snprintf(line, sizeof line, "lui r%d, %d", rd,
                          static_cast<int>(rng.uniform_int(0, 0x3FFFF)));
        }
        src += line;
        src += '\n';
    }
    // A bounded loop with a call inside, exercising jal/jalr both ways.
    src += R"(
        addi r12, zero, 5
    fuzz_loop:
        call fuzz_fn
        addi r12, r12, -1
        bne r12, zero, fuzz_loop
        halt
    fuzz_fn:
        add r13, r12, r12
        ret
    )";
    return src;
}

class SabreDispatchFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SabreDispatchFuzz, CachedMatchesInterpreter) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
    const Program program = assemble(random_program(rng));
    expect_identical(execute(program, DispatchMode::kCached),
                     execute(program, DispatchMode::kInterpreter));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SabreDispatchFuzz, ::testing::Range(0, 25));

TEST(SabreDispatch, FaultingProgramsMatch) {
    // Traps must fire at the same instruction with the same message and
    // leave identical state in both modes.
    const char* faulty[] = {
        // Misaligned load.
        "addi r1, zero, 2\nlw r2, 0(r1)\nhalt\n",
        // Data access out of range.
        "lui r1, 0x1F\nlw r2, 0(r1)\nhalt\n",
        // Jump target out of program (jal).
        "jal r2, 100\nhalt\n",
        // Wrapped jalr target.
        "li r1, 0xFFFFFFFF\njalr r2, r1, 3\nhalt\n",
        // Runaway pc off the end.
        "addi r1, zero, 1\naddi r2, zero, 2\n",
        // Misaligned store.
        "addi r1, zero, 6\nsw r1, 0(r1)\nhalt\n",
    };
    for (const char* src : faulty) {
        SCOPED_TRACE(src);
        const Program program = assemble(src);
        const auto cached = execute(program, DispatchMode::kCached);
        const auto interp = execute(program, DispatchMode::kInterpreter);
        EXPECT_TRUE(cached.trap.has_value());
        expect_identical(cached, interp);
    }
}

TEST(SabreDispatch, CycleBudgetStopsIdentically) {
    // Stop-at-or-before must cut both modes at the same instruction for
    // budgets landing on every phase of the loop.
    const Program program = assemble(R"(
        addi r2, zero, 1000
    spin:
        mul r3, r2, r2
        addi r2, r2, -1
        bne r2, zero, spin
        halt
    )");
    for (std::uint64_t budget : {0ull, 1ull, 2ull, 7ull, 100ull, 101ull,
                                 102ull, 103ull, 5000ull}) {
        SCOPED_TRACE(budget);
        expect_identical(execute(program, DispatchMode::kCached, budget),
                         execute(program, DispatchMode::kInterpreter, budget));
    }
}

// --- The full firmware, both modes, real scenario wire data -----------------

/// Push `epochs` epochs of city-drive wire samples through a
/// SabreFusionSystem and capture the architectural fingerprint.
struct FirmwareOutcome {
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    std::vector<std::uint32_t> control;  ///< raw control register bits
    std::vector<std::uint32_t> data;     ///< full firmware data cells
    friend bool operator==(const FirmwareOutcome&,
                           const FirmwareOutcome&) = default;
};

FirmwareOutcome run_firmware(DispatchMode mode, int epochs) {
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    const std::uint64_t seed = sim::scenario_seed(spec.name, 3);
    sim::Scenario sc(spec.build(10.0, spec.misalignment, seed), seed);

    system::SabreFusionSystem::Config cfg;
    cfg.r_sigma = spec.meas_noise_mps2;
    cfg.q_variance = spec.angle_process_noise * spec.angle_process_noise;
    cfg.dispatch = mode;
    system::SabreFusionSystem sys(cfg);

    int fed = 0;
    while (auto s = sc.next()) {
        sys.push(s->dmu, s->adxl);
        (void)sys.run_pending();
        if (++fed >= epochs) break;
    }
    FirmwareOutcome out;
    out.cycles = sys.cycles();
    out.retired = sys.instructions();
    using CR = sabre::ControlPeripheral;
    for (std::uint32_t r = 0; r <= CR::kInnovSigma3Y; ++r)
        out.control.push_back(
            sys.control().reg(static_cast<CR::Reg>(r)));
    for (std::uint32_t addr = 0; addr < 0x140; addr += 4)
        out.data.push_back(sys.cpu().load_data(addr));
    return out;
}

TEST(SabreDispatch, FirmwareBitIdenticalAcrossModes) {
    const auto cached = run_firmware(DispatchMode::kCached, 300);
    const auto interp = run_firmware(DispatchMode::kInterpreter, 300);
    EXPECT_EQ(cached.cycles, interp.cycles);
    EXPECT_EQ(cached.retired, interp.retired);
    EXPECT_EQ(cached.control, interp.control);
    EXPECT_EQ(cached.data, interp.data);
}

TEST(SabreDispatch, FirmwareImageIsSharedAcrossSystems) {
    // Two fusion systems built back to back reference the same predecoded
    // firmware image (one assemble+predecode per process, fleet-wide).
    const auto a = boresight_firmware_image();
    const auto b = boresight_firmware_image();
    EXPECT_EQ(a.get(), b.get());
    EXPECT_GT(a->size(), 500u);
}

}  // namespace
