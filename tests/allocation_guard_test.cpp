// Steady-state allocation regression guard: after warm-up (ring buffers and
// scratch vectors at their high-water capacity) a BoresightSystem::feed
// epoch must touch the heap exactly zero times, on both the native EKF and
// the Sabre ISS processor. A counting global operator new measures it; any
// reintroduced per-epoch vector/deque churn fails loudly here instead of
// silently costing microseconds in the fleet bench.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/ensemble_realizer.hpp"
#include "sim/scenario_library.hpp"
#include "sim/scenario_trace.hpp"
#include "system/boresight_system.hpp"
#include "system/ensemble_runner.hpp"
#include "util/alloc_counter.hpp"

OB_DEFINE_COUNTING_OPERATOR_NEW

namespace {

using namespace ob;

class AllocationGuard
    : public ::testing::TestWithParam<system::BoresightSystem::Processor> {};

TEST_P(AllocationGuard, FeedIsAllocationFreeAfterWarmup) {
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    const std::uint64_t seed = sim::scenario_seed(spec.name, 7);
    sim::Scenario sc(spec.build(20.0, spec.misalignment, seed), seed);

    system::BoresightSystem::Config cfg;
    cfg.processor = GetParam();
    cfg.filter.meas_noise_mps2 = spec.meas_noise_mps2;
    system::BoresightSystem sys(cfg);

    // Materialize every step up front so the counted loop runs nothing but
    // feed(); Scenario::next itself is allowed to allocate.
    std::vector<sim::Scenario::Step> steps;
    while (auto s = sc.next()) steps.push_back(*s);
    ASSERT_GT(steps.size(), 700u);

    constexpr std::size_t kWarmup = 200;
    for (std::size_t i = 0; i < kWarmup; ++i) sys.feed(sc, steps[i]);

    const std::uint64_t before = util::alloc_count();
    for (std::size_t i = kWarmup; i < steps.size(); ++i) sys.feed(sc, steps[i]);
    const std::uint64_t allocations = util::alloc_count() - before;

    EXPECT_EQ(allocations, 0u)
        << allocations << " heap allocation(s) across "
        << (steps.size() - kWarmup) << " steady-state epochs";
    EXPECT_GT(sys.status().updates, steps.size() / 2)
        << "fusion must actually have run for the guard to mean anything";
}

INSTANTIATE_TEST_SUITE_P(
    Processors, AllocationGuard,
    ::testing::Values(system::BoresightSystem::Processor::kNative,
                      system::BoresightSystem::Processor::kSabre),
    [](const auto& param_info) {
        return param_info.param == system::BoresightSystem::Processor::kNative
                   ? "native"
                   : "sabre";
    });

/// The batched ensemble epoch (SoA realization + analytic transport +
/// lane-array EKF) carries the same guarantee as the scalar system: all
/// lane buffers, detector rings and filter lanes reach their high-water
/// size at construction/warm-up, so a steady-state epoch across every lane
/// touches the heap exactly zero times.
TEST(AllocationGuard, BatchedEnsembleEpochIsAllocationFreeAfterWarmup) {
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    const std::uint64_t stream = sim::scenario_seed(spec.name, 7);
    const auto trace = sim::ScenarioTrace::build(
        spec.build(20.0, spec.misalignment, stream), stream);

    constexpr std::size_t kLanes = 8;
    std::vector<std::uint64_t> seeds(kLanes);
    for (std::size_t l = 0; l < kLanes; ++l) seeds[l] = stream + l;
    sim::EnsembleRealizer ens(trace, spec.misalignment, seeds);

    system::BoresightSystem::Config cfg;
    cfg.filter.meas_noise_mps2 = spec.meas_noise_mps2;
    system::EnsembleNominalSystem sys(cfg, kLanes);

    constexpr std::size_t kWarmup = 200;
    double t = 0.0;
    std::size_t epochs = 0;
    for (; epochs < kWarmup && ens.step(t); ++epochs) {
        sys.feed(ens.trace(), t, ens.dmu(), ens.adxl());
    }
    ASSERT_EQ(epochs, kWarmup);

    const std::uint64_t before = util::alloc_count();
    while (ens.step(t)) {
        sys.feed(ens.trace(), t, ens.dmu(), ens.adxl());
        ++epochs;
    }
    const std::uint64_t allocations = util::alloc_count() - before;

    EXPECT_EQ(allocations, 0u)
        << allocations << " heap allocation(s) across " << (epochs - kWarmup)
        << " steady-state batched lane-epochs";
    ASSERT_GT(epochs, kWarmup + 700u);
    for (std::size_t l = 0; l < kLanes; ++l) {
        ASSERT_TRUE(sys.lane_ok(l)) << "lane " << l;
        EXPECT_GT(sys.status(l).updates, (epochs - kWarmup) / 2)
            << "fusion must actually have run on lane " << l;
    }
}

/// The counting hook itself must observe ordinary heap traffic — otherwise
/// a zero count above would be vacuous.
TEST(AllocationCounter, ObservesVectorGrowth) {
    const std::uint64_t before = ob::util::alloc_count();
    std::vector<int> v;
    v.reserve(1000);
    const std::uint64_t after = ob::util::alloc_count();
    EXPECT_GT(after, before);
}

}  // namespace
