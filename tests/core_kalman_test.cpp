#include <gtest/gtest.h>

#include <cmath>

#include "core/adaptive_tuner.hpp"
#include "core/kalman.hpp"
#include "core/residual_monitor.hpp"
#include "util/rng.hpp"

namespace {

using namespace ob::core;
using ob::math::Mat;
using ob::math::Vec;
using ob::math::Vec2;
using ob::util::Rng;

TEST(Ekf, ScalarConstantConvergesAtTheoreticalRate) {
    // Estimating a constant from noisy measurements: after N updates the
    // variance must be approximately sigma^2/N (with a loose prior).
    Ekf<1, 1> kf(Vec<1>{0.0}, Mat<1, 1>{100.0});
    const double truth = 3.7;
    const double sigma = 0.5;
    Rng rng(1);
    const int n = 400;
    for (int i = 0; i < n; ++i) {
        const Vec<1> z{truth + rng.gaussian(sigma)};
        const Mat<1, 1> h{1.0};
        (void)kf.update(z, Vec<1>{kf.state()[0]}, h, Mat<1, 1>{sigma * sigma});
    }
    EXPECT_NEAR(kf.state()[0], truth, 5.0 * sigma / std::sqrt(n));
    EXPECT_NEAR(kf.covariance()(0, 0), sigma * sigma / n,
                0.05 * sigma * sigma / n);
}

TEST(Ekf, PredictWithTransitionTracksRamp) {
    // Constant-velocity model tracking position measurements of a ramp.
    Ekf<2, 1> kf(Vec2{0.0, 0.0}, Mat<2, 2>{10.0, 0.0, 0.0, 10.0});
    const Mat<2, 2> f{1.0, 0.1,   // dt = 0.1
                      0.0, 1.0};
    Mat<2, 2> q;
    q(0, 0) = 1e-6;
    q(1, 1) = 1e-6;
    const double v_true = 2.0;
    Rng rng(2);
    for (int i = 1; i <= 300; ++i) {
        kf.predict(f, q);
        const double pos = v_true * 0.1 * i;
        const Vec<1> z{pos + rng.gaussian(0.05)};
        const Mat<1, 2> h{1.0, 0.0};
        (void)kf.update(z, Vec<1>{kf.state()[0]}, h, Mat<1, 1>{0.0025});
    }
    EXPECT_NEAR(kf.state()[1], v_true, 0.05);
}

TEST(Ekf, NisGateRejectsOutliers) {
    Ekf<1, 1> kf(Vec<1>{0.0}, Mat<1, 1>{1.0});
    const Mat<1, 1> h{1.0};
    const Mat<1, 1> r{0.01};
    // A wild outlier with a 9-sigma innovation must be rejected by a
    // chi-square gate of 6.6 (1% for 1 DOF).
    const auto res =
        kf.update(Vec<1>{50.0}, Vec<1>{kf.state()[0]}, h, r, 6.6);
    EXPECT_FALSE(res.accepted);
    EXPECT_DOUBLE_EQ(kf.state()[0], 0.0) << "state untouched on rejection";
    // A sane measurement passes.
    const auto ok = kf.update(Vec<1>{0.5}, Vec<1>{kf.state()[0]}, h, r, 6.6);
    EXPECT_TRUE(ok.accepted);
    EXPECT_GT(kf.state()[0], 0.0);
}

TEST(Ekf, InnovationStatisticsAreConsistent) {
    // With a correctly-specified filter the NIS must average ~Nz.
    Ekf<2, 2> kf(Vec2{0.0, 0.0}, Mat<2, 2>{1.0, 0.0, 0.0, 1.0});
    Rng rng(3);
    const Mat<2, 2> h = Mat<2, 2>::identity();
    Mat<2, 2> r;
    r(0, 0) = 0.04;
    r(1, 1) = 0.04;
    const Vec2 truth{0.3, -0.7};
    double nis_sum = 0.0;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
        const Vec2 z{truth[0] + rng.gaussian(0.2), truth[1] + rng.gaussian(0.2)};
        const auto res = kf.update(z, kf.state(), h, r);
        nis_sum += res.nis;
    }
    EXPECT_NEAR(nis_sum / n, 2.0, 0.15);
}

TEST(Ekf, SigmaIndexValidation) {
    Ekf<2, 1> kf(Vec2{}, Mat<2, 2>{4.0, 0.0, 0.0, 9.0});
    EXPECT_DOUBLE_EQ(kf.sigma(0), 2.0);
    EXPECT_DOUBLE_EQ(kf.sigma(1), 3.0);
    EXPECT_THROW((void)kf.sigma(2), std::out_of_range);
}

// Joseph-form updates must keep the covariance symmetric positive definite
// through long random-update sequences.
class EkfStabilityTest : public ::testing::TestWithParam<int> {};

TEST_P(EkfStabilityTest, CovarianceStaysPositiveDefinite) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    Ekf<3, 2> kf(Vec<3>{}, Mat<3, 3>{1.0, 0.0, 0.0,
                                     0.0, 1.0, 0.0,
                                     0.0, 0.0, 1.0});
    Mat<3, 3> q;
    for (std::size_t i = 0; i < 3; ++i) q(i, i) = 1e-8;
    for (int i = 0; i < 2000; ++i) {
        kf.predict_static(q);
        Mat<2, 3> h;
        for (std::size_t r = 0; r < 2; ++r)
            for (std::size_t c = 0; c < 3; ++c) h(r, c) = rng.gaussian();
        Mat<2, 2> rr;
        rr(0, 0) = 0.01;
        rr(1, 1) = 0.01;
        const Vec2 z{rng.gaussian(), rng.gaussian()};
        (void)kf.update(z, h * kf.state(), h, rr);

        const auto& p = kf.covariance();
        EXPECT_LT((p - p.transposed()).max_abs(), 1e-12);
        EXPECT_NO_THROW((void)ob::math::cholesky(
            p + Mat<3, 3>::identity() * 1e-15));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EkfStabilityTest, ::testing::Range(0, 10));

// --- ResidualMonitor ---------------------------------------------------------

TEST(ResidualMonitor, CountsExceedancesPerAxis) {
    ResidualMonitor m;
    const Vec2 s3{3.0, 3.0};
    m.add(Vec2{1.0, -1.0}, s3);   // neither exceeds
    m.add(Vec2{4.0, 0.0}, s3);    // x exceeds
    m.add(Vec2{-5.0, 5.0}, s3);   // both exceed
    EXPECT_EQ(m.samples(), 6u);
    EXPECT_EQ(m.exceedances(), 3u);
    EXPECT_DOUBLE_EQ(m.exceedance_rate(), 0.5);
}

TEST(ResidualMonitor, WindowedRateForgetsOldHistory) {
    ResidualMonitor m(10);
    const Vec2 s3{1.0, 1.0};
    for (int i = 0; i < 10; ++i) m.add(Vec2{5.0, 5.0}, s3);  // all exceed
    EXPECT_DOUBLE_EQ(m.windowed_rate(), 1.0);
    for (int i = 0; i < 10; ++i) m.add(Vec2{0.0, 0.0}, s3);  // none exceed
    EXPECT_DOUBLE_EQ(m.windowed_rate(), 0.0);
    EXPECT_NEAR(m.exceedance_rate(), 0.5, 1e-12);  // lifetime remembers
}

TEST(ResidualMonitor, GaussianInputsMatchTheoreticalRate) {
    ResidualMonitor m;
    Rng rng(5);
    for (int i = 0; i < 100000; ++i) {
        m.add(Vec2{rng.gaussian(), rng.gaussian()}, Vec2{3.0, 3.0});
    }
    EXPECT_NEAR(m.exceedance_rate(), ResidualMonitor::expected_rate(), 8e-4);
}

TEST(ResidualMonitor, ResetClearsEverything) {
    ResidualMonitor m;
    m.add(Vec2{9.0, 9.0}, Vec2{1.0, 1.0});
    m.reset();
    EXPECT_EQ(m.samples(), 0u);
    EXPECT_EQ(m.exceedances(), 0u);
}

// --- AdaptiveNoiseTuner --------------------------------------------------------

TEST(AdaptiveTuner, RaisesNoiseUnderExcessResiduals) {
    AdaptiveTunerConfig cfg;
    cfg.min_samples = 100;
    cfg.window = 100;
    AdaptiveNoiseTuner tuner(cfg);
    double sigma = 0.003;
    bool raised = false;
    Rng rng(6);
    for (int i = 0; i < 2000; ++i) {
        // Residuals drawn with 5x the assumed sigma: heavy exceedance.
        const Vec2 r{rng.gaussian(5.0 * sigma), rng.gaussian(5.0 * sigma)};
        const Vec2 s3{3.0 * sigma, 3.0 * sigma};
        const double rec = tuner.observe(r, s3, sigma);
        if (rec > 0.0) {
            EXPECT_GT(rec, sigma);
            sigma = rec;
            raised = true;
        }
    }
    EXPECT_TRUE(raised);
    EXPECT_GE(sigma, 0.01);
    EXPECT_LE(sigma, cfg.ceiling_mps2);
}

TEST(AdaptiveTuner, LowersNoiseWhenResidualsAreQuiet) {
    AdaptiveTunerConfig cfg;
    cfg.min_samples = 100;
    cfg.window = 100;
    AdaptiveNoiseTuner tuner(cfg);
    double sigma = 0.05;
    bool lowered = false;
    for (int i = 0; i < 3000; ++i) {
        // Zero residuals: far quieter than assumed.
        const double rec =
            tuner.observe(Vec2{0.0, 0.0}, Vec2{3.0 * sigma, 3.0 * sigma}, sigma);
        if (rec > 0.0) {
            EXPECT_LT(rec, sigma);
            sigma = rec;
            lowered = true;
        }
    }
    EXPECT_TRUE(lowered);
    EXPECT_GE(sigma, cfg.floor_mps2);
}

TEST(AdaptiveTuner, RespectsFloorAndCeiling) {
    AdaptiveTunerConfig cfg;
    cfg.min_samples = 10;
    cfg.window = 10;
    AdaptiveNoiseTuner tuner(cfg);
    // Hammer with exceedances: must never exceed ceiling.
    double sigma = cfg.ceiling_mps2;
    for (int i = 0; i < 500; ++i) {
        const double rec =
            tuner.observe(Vec2{1.0, 1.0}, Vec2{0.001, 0.001}, sigma);
        if (rec > 0.0) sigma = rec;
    }
    EXPECT_LE(sigma, cfg.ceiling_mps2);
}

}  // namespace
