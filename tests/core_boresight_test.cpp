#include <gtest/gtest.h>

#include <cmath>

#include "core/batch_aligner.hpp"
#include "core/boresight_ekf.hpp"
#include "util/rng.hpp"

namespace {

using namespace ob::core;
using ob::math::deg2rad;
using ob::math::dcm_from_euler;
using ob::math::EulerAngles;
using ob::math::rad2deg;
using ob::math::Vec2;
using ob::math::Vec3;
using ob::util::Rng;

constexpr double kG = 9.80665;

/// Ideal ACC reading for a given true misalignment and body force.
Vec2 ideal_acc(const EulerAngles& mis, const Vec3& f_body) {
    const Vec3 f_s = dcm_from_euler(mis) * f_body;
    return Vec2{f_s[0], f_s[1]};
}

/// Excitation generator: a cycle of body specific forces rich enough to
/// observe all three axes (gravity + longitudinal + lateral components).
Vec3 rich_excitation(int k) {
    const double phase = 0.013 * k;
    return Vec3{2.0 * std::sin(phase), 1.5 * std::cos(1.7 * phase), -kG};
}

TEST(BoresightEkf, PredictMeasurementKnownValues) {
    // Zero misalignment: sensor sees the body force directly.
    const Vec3 f{1.0, 2.0, -9.0};
    const Vec2 z0 = BoresightEkf::predict_measurement(Vec3{}, Vec2{}, f);
    EXPECT_DOUBLE_EQ(z0[0], 1.0);
    EXPECT_DOUBLE_EQ(z0[1], 2.0);
    // Pure pitch theta on static gravity: x' = g sin(theta).
    const double th = deg2rad(3.0);
    const Vec2 z1 = BoresightEkf::predict_measurement(
        Vec3{0.0, th, 0.0}, Vec2{}, Vec3{0.0, 0.0, -kG});
    EXPECT_NEAR(z1[0], kG * std::sin(th), 1e-12);
    EXPECT_NEAR(z1[1], 0.0, 1e-12);
    // Bias adds directly.
    const Vec2 z2 =
        BoresightEkf::predict_measurement(Vec3{}, Vec2{0.1, -0.2}, f);
    EXPECT_DOUBLE_EQ(z2[0], 1.1);
    EXPECT_DOUBLE_EQ(z2[1], 1.8);
}

TEST(BoresightEkf, NoiseFreeConvergenceToExactTruth) {
    const EulerAngles truth = EulerAngles::from_deg(2.0, -3.0, 4.0);
    BoresightConfig cfg;
    cfg.meas_noise_mps2 = 0.01;
    BoresightEkf ekf(cfg);
    for (int k = 0; k < 4000; ++k) {
        const Vec3 f = rich_excitation(k);
        (void)ekf.step(f, ideal_acc(truth, f));
    }
    const EulerAngles est = ekf.misalignment();
    EXPECT_NEAR(rad2deg(est.roll), 2.0, 0.02);
    EXPECT_NEAR(rad2deg(est.pitch), -3.0, 0.02);
    EXPECT_NEAR(rad2deg(est.yaw), 4.0, 0.02);
}

TEST(BoresightEkf, LevelStaticLeavesYawUnobserved) {
    // Only gravity along -z: yaw must stay at the prior with its 3-sigma
    // essentially unshrunk — the paper's §11.1 observation.
    const EulerAngles truth = EulerAngles::from_deg(1.0, -2.0, 5.0);
    BoresightConfig cfg;
    BoresightEkf ekf(cfg);
    const Vec3 f{0.0, 0.0, -kG};
    for (int k = 0; k < 3000; ++k) (void)ekf.step(f, ideal_acc(truth, f));

    const EulerAngles est = ekf.misalignment();
    const Vec3 s3 = ekf.misalignment_sigma3();
    EXPECT_NEAR(rad2deg(est.roll), 1.0, 0.05);
    EXPECT_NEAR(rad2deg(est.pitch), -2.0, 0.05);
    // Yaw: essentially no information — the estimate stays near the prior
    // (truth is 5 degrees away) and its 3-sigma stays more than an order
    // of magnitude wider than the observable axes. (The EKF linearization
    // lets a little phantom yaw information leak once roll/pitch are
    // nonzero, so the bound is relative, not the untouched prior.)
    EXPECT_LT(rad2deg(std::abs(est.yaw)), 0.5);
    EXPECT_GT(s3[2], deg2rad(1.0));
    EXPECT_GT(s3[2], 20.0 * s3[0]);
    EXPECT_GT(s3[2], 20.0 * s3[1]);
    // Roll/pitch 3-sigma must have collapsed by orders of magnitude.
    EXPECT_LT(s3[0], 0.015 * 3.0 * cfg.init_angle_sigma);
    EXPECT_LT(s3[1], 0.015 * 3.0 * cfg.init_angle_sigma);
}

TEST(BoresightEkf, TiltedPlatformMakesYawObservable) {
    // Tilt the platform (paper: "the platform must be oriented... to
    // generate components of acceleration"): gravity acquires x/y body
    // components and yaw becomes observable.
    const EulerAngles truth = EulerAngles::from_deg(1.0, -2.0, 3.0);
    const EulerAngles tilt = EulerAngles::from_deg(0.0, 15.0, 0.0);
    BoresightEkf ekf{BoresightConfig{}};
    const Vec3 f = dcm_from_euler(tilt) * Vec3{0.0, 0.0, -kG};
    // Two platform orientations are needed for full 3-axis observability;
    // alternate tilt directions as the static procedure would.
    const EulerAngles tilt2 = EulerAngles::from_deg(15.0, 0.0, 0.0);
    const Vec3 f2 = dcm_from_euler(tilt2) * Vec3{0.0, 0.0, -kG};
    for (int k = 0; k < 4000; ++k) {
        const Vec3 fb = (k % 2 == 0) ? f : f2;
        (void)ekf.step(fb, ideal_acc(truth, fb));
    }
    EXPECT_NEAR(rad2deg(ekf.misalignment().yaw), 3.0, 0.1);
    EXPECT_LT(ekf.misalignment_sigma3()[2], deg2rad(1.0));
}

TEST(BoresightEkf, JacobianModesAgree) {
    BoresightConfig analytic;
    analytic.jacobian = JacobianMode::kAnalyticSmallAngle;
    BoresightConfig numeric;
    numeric.jacobian = JacobianMode::kNumeric;
    const EulerAngles truth = EulerAngles::from_deg(1.5, -1.0, 2.0);

    BoresightEkf a(analytic), n(numeric);
    for (int k = 0; k < 3000; ++k) {
        const Vec3 f = rich_excitation(k);
        const Vec2 z = ideal_acc(truth, f);
        (void)a.step(f, z);
        (void)n.step(f, z);
    }
    EXPECT_NEAR(a.misalignment().roll, n.misalignment().roll, deg2rad(0.02));
    EXPECT_NEAR(a.misalignment().pitch, n.misalignment().pitch, deg2rad(0.02));
    EXPECT_NEAR(a.misalignment().yaw, n.misalignment().yaw, deg2rad(0.02));
}

TEST(BoresightEkf, BiasEstimationSeparatesBiasFromAngle) {
    // With varying excitation a constant ACC bias is distinguishable from
    // misalignment; the 5-state filter must recover both.
    const EulerAngles truth = EulerAngles::from_deg(1.0, 2.0, -1.5);
    const Vec2 true_bias{0.05, -0.03};
    BoresightConfig cfg;
    cfg.estimate_bias = true;
    BoresightEkf ekf(cfg);
    for (int k = 0; k < 30000; ++k) {
        const Vec3 f = rich_excitation(k);
        const Vec2 z = ideal_acc(truth, f) + true_bias;
        (void)ekf.step(f, z);
    }
    EXPECT_NEAR(rad2deg(ekf.misalignment().roll), 1.0, 0.1);
    EXPECT_NEAR(rad2deg(ekf.misalignment().pitch), 2.0, 0.1);
    EXPECT_NEAR(rad2deg(ekf.misalignment().yaw), -1.5, 0.1);
    EXPECT_NEAR(ekf.bias()[0], 0.05, 0.01);
    EXPECT_NEAR(ekf.bias()[1], -0.03, 0.01);
}

TEST(BoresightEkf, UncalibratedBiasAliasesIntoAnglesAtLevelStatic) {
    // Without bias states and with only gravity excitation, a bias b_x is
    // indistinguishable from pitch of asin(b_x/g) — which is exactly why
    // the paper calibrates on a level platform first.
    const Vec2 bias{0.05, 0.0};
    BoresightEkf ekf{BoresightConfig{}};
    const Vec3 f{0.0, 0.0, -kG};
    for (int k = 0; k < 3000; ++k) {
        (void)ekf.step(f, ideal_acc(EulerAngles{}, f) + bias);
    }
    const double aliased_pitch = std::asin(bias[0] / kG);
    EXPECT_NEAR(ekf.misalignment().pitch, aliased_pitch, deg2rad(0.02));
}

TEST(BoresightEkf, ResidualEnvelopeMatchesNoise) {
    // Correctly-tuned filter: ~0.27% of residuals outside 3-sigma.
    const EulerAngles truth = EulerAngles::from_deg(1.0, 1.0, 1.0);
    const double sigma = 0.01;
    BoresightConfig cfg;
    cfg.meas_noise_mps2 = sigma;
    BoresightEkf ekf(cfg);
    Rng rng(7);
    std::size_t over = 0, n = 0;
    for (int k = 0; k < 20000; ++k) {
        const Vec3 f = rich_excitation(k);
        const Vec2 z = ideal_acc(truth, f) +
                       Vec2{rng.gaussian(sigma), rng.gaussian(sigma)};
        const auto up = ekf.step(f, z);
        if (k > 500) {  // after convergence
            n += 2;
            if (std::abs(up.residual[0]) > up.sigma3[0]) ++over;
            if (std::abs(up.residual[1]) > up.sigma3[1]) ++over;
        }
    }
    const double rate = static_cast<double>(over) / static_cast<double>(n);
    EXPECT_GT(rate, 0.0005);
    EXPECT_LT(rate, 0.008);
}

TEST(BoresightEkf, UnderTunedFilterShowsExcessExceedances) {
    // R assumed 0.003 while the true noise is 0.02 (the paper's moving
    // vehicle with static tuning): exceedance rate far above 1%.
    const EulerAngles truth = EulerAngles::from_deg(1.0, 1.0, 1.0);
    BoresightConfig cfg;
    cfg.meas_noise_mps2 = 0.003;
    BoresightEkf ekf(cfg);
    Rng rng(8);
    std::size_t over = 0, n = 0;
    for (int k = 0; k < 10000; ++k) {
        const Vec3 f = rich_excitation(k);
        const Vec2 z = ideal_acc(truth, f) +
                       Vec2{rng.gaussian(0.02), rng.gaussian(0.02)};
        const auto up = ekf.step(f, z);
        if (k > 500) {
            n += 2;
            if (std::abs(up.residual[0]) > up.sigma3[0]) ++over;
            if (std::abs(up.residual[1]) > up.sigma3[1]) ++over;
        }
    }
    EXPECT_GT(static_cast<double>(over) / static_cast<double>(n), 0.05);
}

TEST(BoresightEkf, RetuningRestoresEnvelopeConsistency) {
    BoresightConfig cfg;
    cfg.meas_noise_mps2 = 0.003;
    BoresightEkf ekf(cfg);
    ekf.set_measurement_noise(0.02);
    EXPECT_DOUBLE_EQ(ekf.measurement_noise(), 0.02);
    EXPECT_THROW(ekf.set_measurement_noise(0.0), std::invalid_argument);
    EXPECT_THROW(ekf.set_measurement_noise(-1.0), std::invalid_argument);
}

TEST(BoresightEkf, TracksStepChangeAfterBump) {
    // Mount disturbance mid-run: the random-walk process noise lets the
    // filter re-converge — the dynamic realignment capability the paper
    // motivates with "car park bumps".
    EulerAngles truth = EulerAngles::from_deg(1.0, 0.0, 0.0);
    BoresightConfig cfg;
    cfg.angle_process_noise = 5e-6;
    BoresightEkf ekf(cfg);
    Rng rng(9);
    for (int k = 0; k < 6000; ++k) {
        if (k == 3000) truth.pitch += deg2rad(1.5);  // the bump
        const Vec3 f = rich_excitation(k);
        const Vec2 z = ideal_acc(truth, f) +
                       Vec2{rng.gaussian(0.01), rng.gaussian(0.01)};
        (void)ekf.step(f, z);
    }
    EXPECT_NEAR(ekf.misalignment().pitch, truth.pitch, deg2rad(0.25));
}

TEST(BoresightEkf, NisGateSurvivesMeasurementSpikes) {
    const EulerAngles truth = EulerAngles::from_deg(2.0, -1.0, 1.0);
    BoresightConfig cfg;
    cfg.nis_gate = 13.8;  // ~0.1% false reject for 2 DOF
    BoresightEkf gated(cfg);
    BoresightConfig cfg_open = cfg;
    cfg_open.nis_gate = 0.0;
    BoresightEkf open(cfg_open);
    Rng rng(10);
    for (int k = 0; k < 8000; ++k) {
        const Vec3 f = rich_excitation(k);
        Vec2 z = ideal_acc(truth, f) +
                 Vec2{rng.gaussian(0.01), rng.gaussian(0.01)};
        if (k > 1000 && k % 100 == 0) z[0] += 5.0;  // gross spike
        (void)gated.step(f, z);
        (void)open.step(f, z);
    }
    const double gated_err =
        std::abs(gated.misalignment().roll - truth.roll) +
        std::abs(gated.misalignment().pitch - truth.pitch);
    const double open_err = std::abs(open.misalignment().roll - truth.roll) +
                            std::abs(open.misalignment().pitch - truth.pitch);
    EXPECT_LT(gated_err, open_err)
        << "gated filter must reject spikes the open filter absorbs";
    EXPECT_NEAR(rad2deg(gated.misalignment().roll), 2.0, 0.1);
}

TEST(BoresightEkf, ResetRestoresPriors) {
    BoresightEkf ekf{BoresightConfig{}};
    const Vec3 f{1.0, 1.0, -kG};
    for (int k = 0; k < 100; ++k)
        (void)ekf.step(f, ideal_acc(EulerAngles::from_deg(2, 2, 2), f));
    EXPECT_GT(std::abs(ekf.misalignment().pitch), 0.0);
    ekf.reset();
    EXPECT_DOUBLE_EQ(ekf.misalignment().roll, 0.0);
    EXPECT_EQ(ekf.updates(), 0u);
}

// Statistical property: across random truths and noise seeds, the final
// error must lie within the reported 3-sigma for (at least) ~99% of runs.
class BoresightConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(BoresightConsistencyTest, ErrorWithinReportedConfidence) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
    const EulerAngles truth{rng.uniform(-0.08, 0.08), rng.uniform(-0.08, 0.08),
                            rng.uniform(-0.08, 0.08)};
    BoresightConfig cfg;
    cfg.meas_noise_mps2 = 0.01;
    // The numeric Jacobian is exact for the Euler parameterization; the
    // analytic small-angle mode carries a ~1e-4 rad systematic bias at
    // 4-degree misalignments, which a 5000-update covariance (sigma ~2e-5)
    // would flag as inconsistent.
    cfg.jacobian = JacobianMode::kNumeric;
    BoresightEkf ekf(cfg);
    for (int k = 0; k < 5000; ++k) {
        const Vec3 f = rich_excitation(k);
        const Vec2 z = ideal_acc(truth, f) +
                       Vec2{rng.gaussian(0.01), rng.gaussian(0.01)};
        (void)ekf.step(f, z);
    }
    const Vec3 s3 = ekf.misalignment_sigma3();
    const EulerAngles est = ekf.misalignment();
    // 4-sigma tolerance to keep the suite deterministic-stable across all
    // seeds while still verifying covariance honesty.
    EXPECT_LT(std::abs(est.roll - truth.roll), s3[0] * 4.0 / 3.0);
    EXPECT_LT(std::abs(est.pitch - truth.pitch), s3[1] * 4.0 / 3.0);
    EXPECT_LT(std::abs(est.yaw - truth.yaw), s3[2] * 4.0 / 3.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoresightConsistencyTest,
                         ::testing::Range(0, 20));

}  // namespace
