#include <gtest/gtest.h>

#include "comm/bridge.hpp"
#include "comm/can.hpp"
#include "comm/codec.hpp"
#include "comm/slip.hpp"
#include "comm/uart.hpp"
#include "util/rng.hpp"

namespace {

using namespace ob::comm;
using ob::util::Rng;

// --- CAN -------------------------------------------------------------------

TEST(Can, FrameValidity) {
    CanFrame f;
    f.id = 0x7FF;
    f.dlc = 8;
    EXPECT_TRUE(f.valid());
    f.id = 0x800;
    EXPECT_FALSE(f.valid());
    f.id = 0x100;
    f.dlc = 9;
    EXPECT_FALSE(f.valid());
}

TEST(Can, Crc15DetectsSingleBitFlips) {
    CanFrame f;
    f.id = 0x123;
    f.dlc = 4;
    f.data = {0xDE, 0xAD, 0xBE, 0xEF, 0, 0, 0, 0};
    auto bits = can_frame_bits(f);
    const std::uint16_t crc = can_crc15(bits);
    for (std::size_t i = 0; i < bits.size(); ++i) {
        bits[i] = !bits[i];
        EXPECT_NE(can_crc15(bits), crc) << "flip at bit " << i;
        bits[i] = !bits[i];
    }
}

TEST(Can, Crc15IsDeterministicAndBounded) {
    CanFrame f;
    f.id = 0x001;
    f.dlc = 1;
    f.data[0] = 0x55;
    const auto bits = can_frame_bits(f);
    const std::uint16_t crc = can_crc15(bits);
    EXPECT_EQ(crc, can_crc15(bits));
    EXPECT_LT(crc, 0x8000) << "CRC-15 must fit in 15 bits";
}

TEST(Can, FrameBitsLayout) {
    CanFrame f;
    f.id = 0x555;  // 101 0101 0101
    f.dlc = 0;
    const auto bits = can_frame_bits(f);
    ASSERT_EQ(bits.size(), 19u);  // SOF + 11 id + RTR + IDE + r0 + 4 dlc
    EXPECT_FALSE(bits[0]);        // SOF dominant
    EXPECT_TRUE(bits[1]);         // id MSB of 0x555
    EXPECT_FALSE(bits[2]);
}

TEST(Can, StuffBitCounting) {
    // 15 consecutive zeros -> stuff bits after each run of 5 -> 3 stuffs.
    std::vector<std::uint8_t> bits(15, 0);
    EXPECT_EQ(can_stuff_bits(bits), 3u);
    // Alternating bits -> no stuffing.
    std::vector<std::uint8_t> alt;
    for (int i = 0; i < 32; ++i) alt.push_back(i % 2 == 0 ? 1 : 0);
    EXPECT_EQ(can_stuff_bits(alt), 0u);
    // Exactly 5 equal bits -> one stuff.
    EXPECT_EQ(can_stuff_bits(std::vector<std::uint8_t>(5, 1)), 1u);
    EXPECT_EQ(can_stuff_bits(std::vector<std::uint8_t>(4, 1)), 0u);
}

TEST(Can, WireBitsWithinProtocolBounds) {
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        CanFrame f;
        f.id = static_cast<std::uint16_t>(rng.uniform_int(0, 0x7FF));
        f.dlc = static_cast<std::uint8_t>(rng.uniform_int(0, 8));
        for (auto& b : f.data)
            b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        const std::size_t bits = can_wire_bits(f);
        // Unstuffed frame + overhead: 19+8*dlc+15 data/crc bits + 13
        // delimiter/ack/eof/ifs bits; stuffing adds at most 20%.
        const std::size_t base = 19u + 8u * f.dlc + 15u + 13u;
        EXPECT_GE(bits, base);
        EXPECT_LE(bits, base + (19u + 8u * f.dlc + 15u) / 4u + 1u);
    }
}

TEST(CanBus, SingleFrameTiming) {
    CanBus bus(500000.0);
    std::vector<std::pair<CanFrame, double>> rx;
    bus.on_delivery([&](const CanFrame& f, double t) { rx.emplace_back(f, t); });
    CanFrame f;
    f.id = 0x100;
    f.dlc = 8;
    bus.send(f, 0.001);
    bus.advance_to(0.0015);
    // Frame takes can_wire_bits/500k seconds.
    const double expect_t = 0.001 + static_cast<double>(can_wire_bits(f)) / 500000.0;
    ASSERT_EQ(rx.size(), 1u);
    EXPECT_NEAR(rx[0].second, expect_t, 1e-12);
}

TEST(CanBus, ArbitrationLowestIdWins) {
    CanBus bus;
    std::vector<std::uint16_t> order;
    bus.on_delivery([&](const CanFrame& f, double) { order.push_back(f.id); });
    CanFrame hi, lo;
    hi.id = 0x300;
    lo.id = 0x100;
    bus.send(hi, 0.0);
    bus.send(lo, 0.0);
    bus.advance_to(1.0);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 0x100);
    EXPECT_EQ(order[1], 0x300);
}

TEST(CanBus, BusySerializesFrames) {
    CanBus bus(500000.0);
    std::vector<double> times;
    bus.on_delivery([&](const CanFrame&, double t) { times.push_back(t); });
    CanFrame f;
    f.id = 0x10;
    f.dlc = 8;
    bus.send(f, 0.0);
    bus.send(f, 0.0);
    bus.send(f, 0.0);
    bus.advance_to(1.0);
    ASSERT_EQ(times.size(), 3u);
    const double frame_time = static_cast<double>(can_wire_bits(f)) / 500000.0;
    EXPECT_NEAR(times[1] - times[0], frame_time, 1e-12);
    EXPECT_NEAR(times[2] - times[1], frame_time, 1e-12);
    EXPECT_GE(bus.max_latency(), 2.9 * frame_time);
}

TEST(CanBus, AdvanceHorizonHoldsUnfinishedFrame) {
    CanBus bus(500000.0);
    int delivered = 0;
    bus.on_delivery([&](const CanFrame&, double) { ++delivered; });
    CanFrame f;
    f.id = 0x10;
    bus.send(f, 0.0);
    bus.advance_to(1e-6);  // far less than one frame time
    EXPECT_EQ(delivered, 0);
    EXPECT_EQ(bus.pending(), 1u);
    bus.advance_to(1.0);
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(bus.pending(), 0u);
}

TEST(CanBus, RejectsInvalidFrame) {
    CanBus bus;
    CanFrame f;
    f.id = 0x900;
    EXPECT_THROW(bus.send(f, 0.0), std::invalid_argument);
}

// --- UART ------------------------------------------------------------------

TEST(Uart, ByteTimingAndOrdering) {
    UartLink link(115200.0);
    link.send({0x01, 0x02, 0x03}, 0.0);
    const double byte_t = 10.0 / 115200.0;
    auto rx = link.receive_until(2.5 * byte_t);
    ASSERT_EQ(rx.size(), 2u);  // third byte not finished yet
    EXPECT_EQ(rx[0].value, 0x01);
    EXPECT_NEAR(rx[0].t, byte_t, 1e-12);
    EXPECT_NEAR(rx[1].t, 2 * byte_t, 1e-12);
    rx = link.receive_until(10.0);
    ASSERT_EQ(rx.size(), 1u);
    EXPECT_EQ(rx[0].value, 0x03);
}

TEST(Uart, LineBackPressure) {
    UartLink link(9600.0);
    link.send(0xAA, 0.0);
    link.send(0xBB, 0.0);  // must wait for the first byte
    auto rx = link.receive_until(1.0);
    ASSERT_EQ(rx.size(), 2u);
    EXPECT_NEAR(rx[1].t - rx[0].t, 10.0 / 9600.0, 1e-12);
}

TEST(Uart, DropFaultInjection) {
    UartFaults faults;
    faults.drop_probability = 0.5;
    UartLink link(115200.0, faults, 99);
    for (int i = 0; i < 1000; ++i) link.send(0x42, 0.0);
    const auto rx = link.receive_until(1e9);
    EXPECT_EQ(rx.size() + link.bytes_dropped(), 1000u);
    EXPECT_GT(link.bytes_dropped(), 350u);
    EXPECT_LT(link.bytes_dropped(), 650u);
}

TEST(Uart, BitFlipFaultInjection) {
    UartFaults faults;
    faults.bit_flip_probability = 1.0;
    UartLink link(115200.0, faults, 7);
    link.send(0x00, 0.0);
    const auto rx = link.receive_until(1.0);
    ASSERT_EQ(rx.size(), 1u);
    EXPECT_NE(rx[0].value, 0x00);  // exactly one bit flipped
    unsigned v = rx[0].value;
    int bits = 0;
    while (v != 0u) {
        bits += static_cast<int>(v & 1u);
        v >>= 1;
    }
    EXPECT_EQ(bits, 1);
    EXPECT_EQ(link.bytes_corrupted(), 1u);
}

// --- SLIP ------------------------------------------------------------------

TEST(Slip, RoundTripPlain) {
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    slip::Decoder dec;
    std::vector<std::uint8_t> got;
    for (const auto b : slip::encode(payload)) {
        if (auto f = dec.feed(b)) got = *f;
    }
    EXPECT_EQ(got, payload);
}

TEST(Slip, RoundTripSpecialBytes) {
    const std::vector<std::uint8_t> payload = {slip::kEnd, slip::kEsc,
                                               slip::kEnd, 0x00, slip::kEsc};
    slip::Decoder dec;
    std::vector<std::uint8_t> got;
    for (const auto b : slip::encode(payload)) {
        if (auto f = dec.feed(b)) got = *f;
    }
    EXPECT_EQ(got, payload);
}

TEST(Slip, MalformedEscapeDropsFrame) {
    slip::Decoder dec;
    EXPECT_FALSE(dec.feed(slip::kEnd).has_value());
    EXPECT_FALSE(dec.feed(0x01).has_value());
    EXPECT_FALSE(dec.feed(slip::kEsc).has_value());
    EXPECT_FALSE(dec.feed(0x42).has_value());  // invalid escape code
    EXPECT_EQ(dec.malformed(), 1u);
    EXPECT_FALSE(dec.feed(slip::kEnd).has_value());  // poisoned frame gone
}

TEST(Slip, BackToBackDelimitersYieldNothing) {
    slip::Decoder dec;
    EXPECT_FALSE(dec.feed(slip::kEnd).has_value());
    EXPECT_FALSE(dec.feed(slip::kEnd).has_value());
}

// --- DMU codec ---------------------------------------------------------------

TEST(DmuCodec, RoundTrip) {
    DmuSample s;
    s.seq = 42;
    s.gyro = {100, -200, 300};
    s.accel = {-1000, 2000, -32768};
    const auto [gf, af] = DmuCodec::encode(s);
    EXPECT_EQ(gf.id, DmuCodec::kGyroFrameId);
    EXPECT_EQ(af.id, DmuCodec::kAccelFrameId);

    DmuCodec dec;
    EXPECT_FALSE(dec.feed(gf, 0.1).has_value());
    const auto out = dec.feed(af, 0.2);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, s);
    EXPECT_DOUBLE_EQ(out->t, 0.2);
}

TEST(DmuCodec, ChecksumRejection) {
    DmuSample s;
    s.seq = 1;
    auto [gf, af] = DmuCodec::encode(s);
    gf.data[3] ^= 0x10;  // corrupt payload
    DmuCodec dec;
    EXPECT_FALSE(dec.feed(gf, 0.0).has_value());
    EXPECT_FALSE(dec.feed(af, 0.0).has_value());
    EXPECT_EQ(dec.bad_checksum(), 1u);
}

TEST(DmuCodec, SequenceMismatchDropsPair) {
    DmuSample a, b;
    a.seq = 1;
    b.seq = 2;
    const auto [gf_a, af_a] = DmuCodec::encode(a);
    const auto [gf_b, af_b] = DmuCodec::encode(b);
    (void)af_a;
    (void)gf_b;
    DmuCodec dec;
    EXPECT_FALSE(dec.feed(gf_a, 0.0).has_value());
    EXPECT_FALSE(dec.feed(af_b, 0.0).has_value());  // wrong pair
    EXPECT_EQ(dec.seq_mismatches(), 1u);
    // Recovery: a fresh matched pair still decodes.
    const auto [gf_c, af_c] = DmuCodec::encode(b);
    EXPECT_FALSE(dec.feed(gf_c, 0.0).has_value());
    EXPECT_TRUE(dec.feed(af_c, 0.0).has_value());
}

TEST(DmuCodec, IgnoresForeignFrames) {
    CanFrame f;
    f.id = 0x222;
    f.dlc = 8;
    DmuCodec dec;
    EXPECT_FALSE(dec.feed(f, 0.0).has_value());
    EXPECT_EQ(dec.bad_checksum(), 0u);
}

TEST(DmuScale, ConversionAndSaturation) {
    const DmuScale sc;
    EXPECT_EQ(sc.accel_to_raw(0.0), 0);
    // +-2 g range saturates.
    EXPECT_EQ(sc.accel_to_raw(100.0), 32767);
    EXPECT_EQ(sc.accel_to_raw(-100.0), -32768);
    // Round-trip within one LSB.
    const double a = 3.21;
    EXPECT_NEAR(sc.raw_to_accel(sc.accel_to_raw(a)), a, sc.accel_lsb_mps2);
    const double w = 0.5;
    EXPECT_NEAR(sc.raw_to_rate(sc.rate_to_raw(w)), w, sc.gyro_lsb_rad_s);
}

// --- ADXL202 codec -----------------------------------------------------------

TEST(Adxl, DutyCycleTransferFunction) {
    const AdxlConfig cfg;
    // 0 g -> 50% duty.
    const auto t0 = adxl_encode(0.0, 0.0, 0, cfg);
    EXPECT_EQ(t0.t1x, cfg.t2_ticks() / 2);
    // +1 g -> 62.5% duty (datasheet: 12.5%/g).
    const auto t1 = adxl_encode(cfg.g, -cfg.g, 0, cfg);
    EXPECT_NEAR(static_cast<double>(t1.t1x) / cfg.t2_ticks(), 0.625, 1e-6);
    EXPECT_NEAR(static_cast<double>(t1.t1y) / cfg.t2_ticks(), 0.375, 1e-6);
}

TEST(Adxl, EncodeDecodeRoundTripWithinQuantization) {
    const AdxlConfig cfg;
    Rng rng(3);
    // One timer tick of duty maps to this acceleration quantum.
    const double quantum = cfg.g / (cfg.duty_per_g * cfg.t2_ticks());
    for (int i = 0; i < 500; ++i) {
        const double ax = rng.uniform(-15.0, 15.0);
        const double ay = rng.uniform(-15.0, 15.0);
        const auto [dx, dy] = adxl_decode(adxl_encode(ax, ay, 0, cfg), cfg);
        EXPECT_NEAR(dx, ax, quantum);
        EXPECT_NEAR(dy, ay, quantum);
    }
}

TEST(Adxl, ClipsAtRange) {
    const AdxlConfig cfg;
    const auto t = adxl_encode(10.0 * cfg.g, -10.0 * cfg.g, 0, cfg);
    const auto [ax, ay] = adxl_decode(t, cfg);
    EXPECT_NEAR(ax, cfg.range_g * cfg.g, 1e-3);
    EXPECT_NEAR(ay, -cfg.range_g * cfg.g, 1e-3);
}

TEST(Adxl, SerializeDeserializeRoundTrip) {
    AdxlTiming t;
    t.seq = 9;
    t.t1x = 50000;
    t.t1y = 62500;
    t.t2 = 100000;
    const auto bytes = adxl_serialize(t);
    ASSERT_EQ(bytes.size(), kAdxlPacketSize);
    AdxlDeserializer dec;
    std::optional<AdxlTiming> out;
    for (const auto b : bytes) {
        auto r = dec.feed(b, 1.5);
        if (r) out = r;
    }
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, t);
    EXPECT_DOUBLE_EQ(out->t, 1.5);
}

TEST(Adxl, DeserializerResyncsAfterGarbage) {
    AdxlTiming t;
    t.seq = 1;
    t.t1x = 1;
    t.t1y = 2;
    t.t2 = 3;
    AdxlDeserializer dec;
    // Garbage prefix, then a clean packet.
    for (const std::uint8_t b : {std::uint8_t{0x00}, std::uint8_t{0xFF},
                                 std::uint8_t{0x13}}) {
        EXPECT_FALSE(dec.feed(b, 0.0).has_value());
    }
    EXPECT_GE(dec.resyncs(), 3u);
    std::optional<AdxlTiming> out;
    for (const auto b : adxl_serialize(t)) {
        auto r = dec.feed(b, 0.0);
        if (r) out = r;
    }
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, t);
}

TEST(Adxl, BadChecksumCountedAndRecovered) {
    AdxlTiming t;
    t.seq = 1;
    t.t1x = 11;
    t.t1y = 22;
    t.t2 = 33;
    auto bytes = adxl_serialize(t);
    bytes[5] ^= 0x01;  // corrupt
    AdxlDeserializer dec;
    for (const auto b : bytes) EXPECT_FALSE(dec.feed(b, 0.0).has_value());
    EXPECT_EQ(dec.bad_checksum(), 1u);
    // Clean packet afterwards decodes fine.
    std::optional<AdxlTiming> out;
    for (const auto b : adxl_serialize(t)) {
        auto r = dec.feed(b, 0.0);
        if (r) out = r;
    }
    EXPECT_TRUE(out.has_value());
}

// --- CAN -> serial bridge ----------------------------------------------------

TEST(Bridge, EndToEndRoundTrip) {
    UartLink uart(115200.0);
    CanSerialBridge bridge(uart);
    CanSerialDeframer deframer;

    CanFrame f;
    f.id = 0x100;
    f.dlc = 8;
    for (std::uint8_t i = 0; i < 8; ++i) f.data[i] = static_cast<std::uint8_t>(0xC0 + i);
    bridge.forward(f, 0.0);

    std::optional<CanFrame> got;
    for (const auto& b : uart.receive_until(1.0)) {
        auto r = deframer.feed(b);
        if (r) got = r;
    }
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, f);
    EXPECT_EQ(bridge.frames_forwarded(), 1u);
}

TEST(Bridge, FramingErrorPoisonsFrame) {
    UartLink uart(115200.0);
    CanSerialBridge bridge(uart);
    CanSerialDeframer deframer;
    CanFrame f;
    f.id = 0x42;
    f.dlc = 2;
    f.data[0] = 1;
    f.data[1] = 2;
    bridge.forward(f, 0.0);
    auto bytes = uart.receive_until(1.0);
    ASSERT_FALSE(bytes.empty());
    bytes[2].framing_error = true;
    std::optional<CanFrame> got;
    for (const auto& b : bytes) {
        auto r = deframer.feed(b);
        if (r) got = r;
    }
    EXPECT_FALSE(got.has_value());
    EXPECT_EQ(deframer.malformed(), 1u);
}

TEST(Bridge, TruncatedPayloadRejected) {
    CanSerialDeframer deframer;
    // SLIP frame claiming dlc=8 but carrying 2 data bytes (+fake CRC).
    const std::vector<std::uint8_t> payload = {0x01, 0x00, 0x08,
                                               0xAA, 0xBB, 0x12, 0x34};
    std::optional<CanFrame> got;
    for (const auto raw : ob::comm::slip::encode(payload)) {
        UartByte b;
        b.value = raw;
        auto r = deframer.feed(b);
        if (r) got = r;
    }
    EXPECT_FALSE(got.has_value());
    EXPECT_EQ(deframer.malformed(), 1u);
}

TEST(Bridge, CrcRejectsTamperedPayload) {
    // Build a valid bridged payload, flip two compensating bits (which an
    // additive checksum would miss), and verify the CRC-15 rejects it.
    UartLink uart(115200.0);
    CanSerialBridge bridge(uart);
    CanFrame f;
    f.id = 0x123;
    f.dlc = 4;
    f.data = {0x10, 0x20, 0x30, 0x40, 0, 0, 0, 0};
    bridge.forward(f, 0.0);
    auto bytes = uart.receive_until(1.0);
    ASSERT_GT(bytes.size(), 8u);
    // Payload layout inside SLIP: [END id_hi id_lo dlc d0 d1 d2 d3 crc...]
    bytes[5].value ^= 0x04;  // +4 on one data byte
    bytes[6].value ^= 0x04;  // bit flip on another (additive sum may survive)
    CanSerialDeframer deframer;
    std::optional<CanFrame> got;
    for (const auto& b : bytes) {
        if (auto r = deframer.feed(b)) got = r;
    }
    EXPECT_FALSE(got.has_value());
    EXPECT_EQ(deframer.malformed(), 1u);
}

// Property sweep: random DMU samples and CAN frames survive the full
// transport chain bit-exactly.
class CommPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CommPropertyTest, DmuSamplesSurviveCanAndBridge) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    CanBus bus;
    UartLink uart(115200.0);
    CanSerialBridge bridge(uart);
    bus.on_delivery(
        [&](const CanFrame& f, double t) { bridge.forward(f, t); });

    std::vector<DmuSample> sent;
    for (int i = 0; i < 20; ++i) {
        DmuSample s;
        s.seq = static_cast<std::uint8_t>(i);
        for (auto& g : s.gyro)
            g = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
        for (auto& a : s.accel)
            a = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
        sent.push_back(s);
        const auto [gf, af] = DmuCodec::encode(s);
        bus.send(gf, i * 0.01);
        bus.send(af, i * 0.01);
    }
    bus.advance_to(10.0);

    CanSerialDeframer deframer;
    DmuCodec codec;
    std::vector<DmuSample> got;
    for (const auto& b : uart.receive_until(10.0)) {
        if (auto f = deframer.feed(b)) {
            if (auto s = codec.feed(*f, b.t)) got.push_back(*s);
        }
    }
    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) EXPECT_EQ(got[i], sent[i]);
}

TEST_P(CommPropertyTest, AdxlStreamSurvivesUart) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
    UartLink uart(115200.0);
    AdxlDeserializer dec;
    std::vector<AdxlTiming> sent;
    for (int i = 0; i < 50; ++i) {
        AdxlTiming t;
        t.seq = static_cast<std::uint8_t>(i);
        t.t1x = static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFF));
        t.t1y = static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFF));
        t.t2 = static_cast<std::uint32_t>(rng.uniform_int(1, 0xFFFFFF));
        sent.push_back(t);
        uart.send(adxl_serialize(t), i * 0.01);
    }
    std::vector<AdxlTiming> got;
    for (const auto& b : uart.receive_until(10.0)) {
        if (auto r = dec.feed(b.value, b.t)) got.push_back(*r);
    }
    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) EXPECT_EQ(got[i], sent[i]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommPropertyTest, ::testing::Range(0, 10));

}  // namespace
