#include <gtest/gtest.h>

#include <cfenv>
#include <cmath>

#include "softfloat/softfloat.hpp"
#include "softfloat/softfloat64.hpp"
#include "util/rng.hpp"

// Edge-regime conformance: dense subnormal/boundary corpora, where
// softfloat implementations classically break. Complements the broad-band
// fuzz suites.

namespace {

namespace sf = ob::softfloat;
using ob::util::Rng;

[[gnu::noinline]] float host_op32(char op, float a, float b) {
    volatile float x = a, y = b;
    switch (op) {
        case '+': return x + y;
        case '-': return x - y;
        case '*': return x * y;
        case '/': return x / y;
    }
    return 0.0f;
}

[[gnu::noinline]] double host_op64(char op, double a, double b) {
    volatile double x = a, y = b;
    switch (op) {
        case '+': return x + y;
        case '-': return x - y;
        case '*': return x * y;
        case '/': return x / y;
    }
    return 0.0;
}

/// Corpus concentrated on encodings near the subnormal/normal boundary,
/// near overflow, and with tiny exponents.
std::uint32_t edge_bits32(Rng& rng) {
    switch (rng.uniform_int(0, 5)) {
        case 0:  // subnormal
            return (rng.bits32() & 0x807FFFFFu);
        case 1:  // smallest normals
            return (rng.bits32() & 0x80000000u) | 0x00800000u |
                   (rng.bits32() & 0x007FFFFFu & 0x3FF);
        case 2:  // near overflow
            return (rng.bits32() & 0x807FFFFFu) | 0x7E800000u;
        case 3:  // exact powers of two
            return (rng.bits32() & 0x80000000u) |
                   (static_cast<std::uint32_t>(rng.uniform_int(1, 254)) << 23);
        case 4:  // tiny exponent normals
            return (rng.bits32() & 0x807FFFFFu) |
                   (static_cast<std::uint32_t>(rng.uniform_int(1, 16)) << 23);
        default:
            return rng.bits32();
    }
}

std::uint64_t edge_bits64(Rng& rng) {
    switch (rng.uniform_int(0, 4)) {
        case 0:  // subnormal
            return rng.bits64() & 0x800FFFFFFFFFFFFFull;
        case 1:  // smallest normals
            return (rng.bits64() & 0x8000000000000000ull) |
                   0x0010000000000000ull | (rng.bits64() & 0xFFFFFull);
        case 2:  // near overflow
            return (rng.bits64() & 0x800FFFFFFFFFFFFFull) |
                   0x7FD0000000000000ull;
        case 3:  // powers of two
            return (rng.bits64() & 0x8000000000000000ull) |
                   (static_cast<std::uint64_t>(rng.uniform_int(1, 2046))
                    << 52);
        default:
            return rng.bits64();
    }
}

TEST(SoftFloatEdge, SubnormalCorpus32) {
    Rng rng(0xED6E);
    sf::Context ctx;
    const char ops[] = {'+', '-', '*', '/'};
    for (int i = 0; i < 200000; ++i) {
        const sf::F32 a{edge_bits32(rng)};
        const sf::F32 b{edge_bits32(rng)};
        const char op = ops[i % 4];
        sf::F32 mine;
        switch (op) {
            case '+': mine = sf::add(a, b, ctx); break;
            case '-': mine = sf::sub(a, b, ctx); break;
            case '*': mine = sf::mul(a, b, ctx); break;
            default: mine = sf::div(a, b, ctx); break;
        }
        const sf::F32 href =
            sf::from_host(host_op32(op, sf::to_host(a), sf::to_host(b)));
        if (mine.is_nan() || href.is_nan()) {
            ASSERT_EQ(mine.is_nan(), href.is_nan())
                << op << std::hex << " a=0x" << a.bits << " b=0x" << b.bits;
        } else {
            ASSERT_EQ(mine.bits, href.bits)
                << op << std::hex << " a=0x" << a.bits << " b=0x" << b.bits;
        }
    }
}

TEST(SoftFloatEdge, SubnormalCorpus64) {
    Rng rng(0xED64);
    sf::Context ctx;
    const char ops[] = {'+', '-', '*', '/'};
    for (int i = 0; i < 150000; ++i) {
        const sf::F64 a{edge_bits64(rng)};
        const sf::F64 b{edge_bits64(rng)};
        const char op = ops[i % 4];
        sf::F64 mine;
        switch (op) {
            case '+': mine = sf::add(a, b, ctx); break;
            case '-': mine = sf::sub(a, b, ctx); break;
            case '*': mine = sf::mul(a, b, ctx); break;
            default: mine = sf::div(a, b, ctx); break;
        }
        const sf::F64 href =
            sf::from_host(host_op64(op, sf::to_host(a), sf::to_host(b)));
        if (mine.is_nan() || href.is_nan()) {
            ASSERT_EQ(mine.is_nan(), href.is_nan())
                << op << std::hex << " a=0x" << a.bits << " b=0x" << b.bits;
        } else {
            ASSERT_EQ(mine.bits, href.bits)
                << op << std::hex << " a=0x" << a.bits << " b=0x" << b.bits;
        }
    }
}

TEST(SoftFloatEdge, CancellationIsExact) {
    // Sterbenz lemma: if a/2 <= b <= 2a (same sign), a - b is exact.
    Rng rng(0x57E2);
    sf::Context ctx;
    for (int i = 0; i < 50000; ++i) {
        const float fa = static_cast<float>(rng.uniform(0.5, 100.0));
        const float fb = static_cast<float>(
            static_cast<double>(fa) * rng.uniform(0.5, 2.0));
        ctx.clear();
        const sf::F32 r =
            sf::sub(sf::from_host(fa), sf::from_host(fb), ctx);
        EXPECT_EQ(sf::to_host(r), fa - fb);
        EXPECT_FALSE(ctx.any(sf::kInexact))
            << "Sterbenz subtraction must be exact: " << fa << " - " << fb;
    }
}

TEST(SoftFloatEdge, SqrtOfSquareRoundTrips) {
    // For moderate values, sqrt(x*x) == |x| exactly when x*x is exact.
    Rng rng(0x5117);
    sf::Context ctx;
    for (int i = 0; i < 20000; ++i) {
        // 12-bit significands square exactly in binary32.
        const float x = static_cast<float>(rng.uniform_int(1, 4095));
        ctx.clear();
        const sf::F32 sq = sf::mul(sf::from_host(x), sf::from_host(x), ctx);
        ASSERT_FALSE(ctx.any(sf::kInexact));
        const sf::F32 r = sf::sqrt(sq, ctx);
        EXPECT_EQ(sf::to_host(r), x);
    }
}

TEST(SoftFloatEdge, MinMaxBoundaryArithmetic) {
    sf::Context ctx;
    const sf::F32 max_finite{0x7F7FFFFFu};
    const sf::F32 min_sub{0x00000001u};
    const sf::F32 min_normal{0x00800000u};

    // max + ulp overflows; max + tiny stays max (inexact).
    ctx.clear();
    EXPECT_EQ(sf::add(max_finite, min_sub, ctx).bits, max_finite.bits);
    EXPECT_TRUE(ctx.any(sf::kInexact));

    // min_normal - min_sub is the largest subnormal, exactly.
    ctx.clear();
    const sf::F32 r = sf::sub(min_normal, min_sub, ctx);
    EXPECT_EQ(r.bits, 0x007FFFFFu);
    EXPECT_FALSE(ctx.any(sf::kInexact));

    // min_sub / 2 rounds to zero with underflow+inexact.
    ctx.clear();
    const sf::F32 h = sf::mul(min_sub, sf::from_host(0.5f), ctx);
    EXPECT_TRUE(h.is_zero());
    EXPECT_TRUE(ctx.any(sf::kUnderflow));
    EXPECT_TRUE(ctx.any(sf::kInexact));

    // min_sub * 2 is exact (subnormal doubling).
    ctx.clear();
    EXPECT_EQ(sf::mul(min_sub, sf::from_host(2.0f), ctx).bits, 0x00000002u);
    EXPECT_FALSE(ctx.any(sf::kInexact));
}

TEST(SoftFloatEdge, WideningNarrowingComposition) {
    // f32 -> f64 -> f32 must be the identity for every f32 value class.
    Rng rng(0x1DE4);
    sf::Context ctx;
    for (int i = 0; i < 100000; ++i) {
        const sf::F32 a{rng.bits32()};
        const sf::F32 back = sf::f64_to_f32(sf::f32_to_f64(a, ctx), ctx);
        if (a.is_nan()) {
            EXPECT_TRUE(back.is_nan());
        } else {
            EXPECT_EQ(back.bits, a.bits) << std::hex << a.bits;
        }
    }
}

}  // namespace
