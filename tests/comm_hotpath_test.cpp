// Hot-path equivalence suite for the zero-allocation transport rewrite:
// the sink-based UART drain, the ring buffer it rides on, the table-driven
// CAN wire-timing/CRC fast path and the reusable SLIP encoder must be
// byte- and bit-identical to the reference implementations they replaced.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "comm/bridge.hpp"
#include "comm/can.hpp"
#include "comm/codec.hpp"
#include "comm/slip.hpp"
#include "comm/uart.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"

namespace {

using namespace ob::comm;
using ob::util::RingBuffer;
using ob::util::Rng;

// --- RingBuffer -------------------------------------------------------------

TEST(RingBuffer, FifoOrderAcrossWraparound) {
    RingBuffer<int> ring;
    // Drive head far past several capacity multiples with a small resident
    // population so the window wraps repeatedly.
    int next_in = 0, next_out = 0;
    for (int cycle = 0; cycle < 1000; ++cycle) {
        for (int k = 0; k < 3; ++k) ring.push_back(next_in++);
        while (ring.size() > 2) {
            EXPECT_EQ(ring.front(), next_out);
            ring.pop_front();
            ++next_out;
        }
    }
    while (!ring.empty()) {
        EXPECT_EQ(ring.front(), next_out++);
        ring.pop_front();
    }
    EXPECT_EQ(next_out, next_in);
}

TEST(RingBuffer, OverflowGrowsPreservingOrder) {
    RingBuffer<int> ring;
    // Shift the head so growth happens from a wrapped state.
    for (int i = 0; i < 5; ++i) ring.push_back(i);
    for (int i = 0; i < 5; ++i) ring.pop_front();
    const std::size_t cap0 = ring.capacity();
    for (int i = 0; i < 1000; ++i) ring.push_back(i);
    EXPECT_GT(ring.capacity(), cap0);
    EXPECT_EQ(ring.size(), 1000u);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(ring.front(), i);
        ring.pop_front();
    }
}

TEST(RingBuffer, SteadyStateChurnNeverGrows) {
    RingBuffer<int> ring;
    for (int i = 0; i < 10; ++i) ring.push_back(i);
    const std::size_t cap = ring.capacity();
    ASSERT_GT(cap, 10u) << "resident population must sit below capacity";
    for (int i = 0; i < 100000; ++i) {
        ring.push_back(i);
        ring.pop_front();
    }
    EXPECT_EQ(ring.capacity(), cap);
    EXPECT_EQ(ring.size(), 10u);
}

TEST(RingBuffer, IndexingAndEraseMatchFront) {
    RingBuffer<int> ring;
    // Wrap the head first.
    for (int i = 0; i < 10; ++i) ring.push_back(i);
    for (int i = 0; i < 10; ++i) ring.pop_front();
    for (int i = 0; i < 6; ++i) ring.push_back(i);
    EXPECT_EQ(ring[0], 0);
    EXPECT_EQ(ring[5], 5);
    ring.erase(2);  // remove value 2
    ASSERT_EQ(ring.size(), 5u);
    const int expect[] = {0, 1, 3, 4, 5};
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(ring[i], expect[i]);
    ring.erase(0);
    EXPECT_EQ(ring.front(), 1);
}

TEST(RingBuffer, ReserveRoundsUpAndPreventsGrowth) {
    RingBuffer<int> ring;
    ring.reserve(100);
    const std::size_t cap = ring.capacity();
    EXPECT_GE(cap, 100u);
    for (int i = 0; i < 100; ++i) ring.push_back(i);
    EXPECT_EQ(ring.capacity(), cap);
}

// --- drain_until vs receive_until -------------------------------------------

/// Both APIs must deliver identical byte streams (values, timestamps,
/// framing flags) for identical send schedules, including under fault
/// injection, where the shared RNG stream makes the comparison exact.
class UartDrainEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(UartDrainEquivalence, MatchesReceiveUntil) {
    const auto seed = static_cast<std::uint64_t>(GetParam());
    UartFaults faults;
    if (GetParam() % 2 == 1) {
        // Odd seeds exercise the fault-injection path (RNG draws active).
        faults.drop_probability = 0.05;
        faults.bit_flip_probability = 0.05;
        faults.framing_error_probability = 0.05;
    }
    UartLink a(115200.0, faults, seed);
    UartLink b(115200.0, faults, seed);

    Rng sched(seed + 1000);
    double t = 0.0;
    std::vector<UartByte> via_receive, via_drain;
    for (int burst = 0; burst < 50; ++burst) {
        t += sched.uniform(0.0, 0.002);
        const int n = static_cast<int>(sched.uniform_int(1, 20));
        for (int i = 0; i < n; ++i) {
            const auto byte = static_cast<std::uint8_t>(sched.uniform_int(0, 255));
            a.send(byte, t);
            b.send(byte, t);
        }
        const double horizon = t + sched.uniform(0.0, 0.003);
        for (const auto& rx : a.receive_until(horizon)) via_receive.push_back(rx);
        b.drain_until(horizon,
                      [&](const UartByte& rx) { via_drain.push_back(rx); });
    }
    for (const auto& rx : a.receive_until(1e9)) via_receive.push_back(rx);
    b.drain_until(1e9, [&](const UartByte& rx) { via_drain.push_back(rx); });

    ASSERT_EQ(via_receive.size(), via_drain.size());
    for (std::size_t i = 0; i < via_receive.size(); ++i) {
        EXPECT_EQ(via_receive[i].value, via_drain[i].value) << "byte " << i;
        EXPECT_DOUBLE_EQ(via_receive[i].t, via_drain[i].t) << "byte " << i;
        EXPECT_EQ(via_receive[i].framing_error, via_drain[i].framing_error)
            << "byte " << i;
    }
    EXPECT_EQ(a.bytes_dropped(), b.bytes_dropped());
    EXPECT_EQ(a.bytes_corrupted(), b.bytes_corrupted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, UartDrainEquivalence, ::testing::Range(0, 8));

TEST(UartDrain, PartialDrainLeavesRemainderInOrder) {
    UartLink link(9600.0);
    const std::vector<std::uint8_t> bytes = {1, 2, 3, 4, 5};
    link.send(bytes, 0.0);
    const double byte_t = link.byte_time();
    std::vector<std::uint8_t> got;
    link.drain_until(2.5 * byte_t,
                     [&](const UartByte& b) { got.push_back(b.value); });
    EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2}));
    EXPECT_EQ(link.pending(), 3u);
    link.drain_until(1.0, [&](const UartByte& b) { got.push_back(b.value); });
    EXPECT_EQ(got, bytes);
    EXPECT_EQ(link.pending(), 0u);
}

TEST(UartDrain, SpanSendMatchesVectorSend) {
    UartLink a(115200.0), b(115200.0);
    const std::vector<std::uint8_t> bytes = {0x10, 0x20, 0x30};
    a.send(bytes, 0.001);
    const std::array<std::uint8_t, 3> arr = {0x10, 0x20, 0x30};
    b.send(arr, 0.001);
    const auto ra = a.receive_until(1.0);
    const auto rb = b.receive_until(1.0);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].value, rb[i].value);
        EXPECT_DOUBLE_EQ(ra[i].t, rb[i].t);
    }
}

// --- Table-driven CAN fast path vs reference --------------------------------

[[nodiscard]] CanFrame random_frame(Rng& rng) {
    CanFrame f;
    f.id = static_cast<std::uint16_t>(rng.uniform_int(0, 0x7FF));
    f.dlc = static_cast<std::uint8_t>(rng.uniform_int(0, 8));
    for (auto& b : f.data)
        b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    return f;
}

/// Reference wire-bit count assembled from the reference pieces the fast
/// path replaced: materialized bit vector + bitwise CRC + bitwise stuffing.
[[nodiscard]] std::size_t reference_wire_bits(const CanFrame& f) {
    auto bits = can_frame_bits(f);
    const std::uint16_t crc = can_crc15(bits);
    for (int i = 14; i >= 0; --i) bits.push_back(((crc >> i) & 1) != 0);
    return bits.size() + can_stuff_bits(bits) + 1 + 2 + 7 + 3;
}

TEST(CanFastPath, FrameCrcMatchesReferenceOnRandomFrames) {
    Rng rng(2024);
    for (int i = 0; i < 5000; ++i) {
        const CanFrame f = random_frame(rng);
        EXPECT_EQ(can_frame_crc15(f), can_crc15(can_frame_bits(f)))
            << "frame " << i;
    }
}

TEST(CanFastPath, WireBitsMatchReferenceOnRandomFrames) {
    Rng rng(77);
    for (int i = 0; i < 5000; ++i) {
        const CanFrame f = random_frame(rng);
        EXPECT_EQ(can_wire_bits(f), reference_wire_bits(f)) << "frame " << i;
    }
}

TEST(CanFastPath, WireBitsStressWorstCaseStuffing) {
    // All-zero and all-ones payloads maximize stuff-bit insertion, the
    // regime where the byte-table state machine is most stressed.
    for (const std::uint8_t fill : {0x00, 0xFF, 0xAA, 0x55}) {
        for (std::uint8_t dlc = 0; dlc <= 8; ++dlc) {
            CanFrame f;
            f.id = (fill != 0u) ? 0x7FF : 0x000;
            f.dlc = dlc;
            f.data.fill(fill);
            EXPECT_EQ(can_wire_bits(f), reference_wire_bits(f))
                << "fill " << int(fill) << " dlc " << int(dlc);
        }
    }
}

TEST(CanFastPath, CachedWireBitsMatchesReferenceAcrossCollisions) {
    CanBus bus;
    Rng rng(99);
    // Way more shapes than cache slots: every lookup (hit, miss, evicted
    // re-miss) must agree with the reference.
    std::vector<CanFrame> frames;
    for (int i = 0; i < 500; ++i) frames.push_back(random_frame(rng));
    for (int pass = 0; pass < 3; ++pass) {
        for (const auto& f : frames)
            EXPECT_EQ(bus.cached_wire_bits(f), reference_wire_bits(f));
    }
}

TEST(CanFastPath, CachedWireBitsInvalidFrameThrows) {
    CanBus bus;
    CanFrame f;
    f.id = 0x900;
    EXPECT_THROW((void)bus.cached_wire_bits(f), std::invalid_argument);
}

TEST(CanFastPath, DirectDeliveryMatchesStdFunctionFanout) {
    CanBus via_fn, via_direct;
    std::vector<std::pair<std::uint16_t, double>> got_fn, got_direct;
    via_fn.on_delivery([&](const CanFrame& f, double t) {
        got_fn.emplace_back(f.id, t);
    });
    via_direct.set_direct_delivery(
        [](void* ctx, const CanFrame& f, double t) {
            static_cast<std::vector<std::pair<std::uint16_t, double>>*>(ctx)
                ->emplace_back(f.id, t);
        },
        &got_direct);

    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        const CanFrame f = random_frame(rng);
        const double t = 0.001 * i;
        via_fn.send(f, t);
        via_direct.send(f, t);
    }
    via_fn.advance_to(10.0);
    via_direct.advance_to(10.0);
    ASSERT_EQ(got_fn.size(), got_direct.size());
    for (std::size_t i = 0; i < got_fn.size(); ++i) {
        EXPECT_EQ(got_fn[i].first, got_direct[i].first);
        EXPECT_DOUBLE_EQ(got_fn[i].second, got_direct[i].second);
    }
}

// --- SLIP encoder/decoder reuse ----------------------------------------------

TEST(SlipHotPath, EncoderReusesBufferAndMatchesFreeFunction) {
    slip::Encoder enc;
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        std::vector<std::uint8_t> payload(
            static_cast<std::size_t>(rng.uniform_int(0, 32)));
        for (auto& b : payload)
            b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        const auto view = enc.encode(payload);
        const auto expect = slip::encode(payload);
        ASSERT_EQ(view.size(), expect.size()) << "payload " << i;
        for (std::size_t k = 0; k < view.size(); ++k)
            EXPECT_EQ(view[k], expect[k]);
    }
}

TEST(SlipHotPath, FeedFrameViewMatchesFeedCopy) {
    slip::Decoder by_view, by_copy;
    Rng rng(13);
    for (int i = 0; i < 2000; ++i) {
        const auto byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        const auto* view = by_view.feed_frame(byte);
        const auto copy = by_copy.feed(byte);
        ASSERT_EQ(view != nullptr, copy.has_value()) << "byte " << i;
        if (view != nullptr) {
            EXPECT_EQ(*view, *copy);
        }
    }
    EXPECT_EQ(by_view.malformed(), by_copy.malformed());
}

// --- Scratch-buffer codec paths ----------------------------------------------

TEST(CodecHotPath, AdxlSerializeIntoMatchesVector) {
    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
        AdxlTiming t;
        t.seq = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        t.t1x = static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFF));
        t.t1y = static_cast<std::uint32_t>(rng.uniform_int(0, 0xFFFFFF));
        t.t2 = static_cast<std::uint32_t>(rng.uniform_int(1, 0xFFFFFF));
        std::array<std::uint8_t, kAdxlPacketSize> packet{};
        adxl_serialize_into(t, packet);
        const auto expect = adxl_serialize(t);
        ASSERT_EQ(expect.size(), packet.size());
        for (std::size_t k = 0; k < packet.size(); ++k)
            EXPECT_EQ(packet[k], expect[k]);
    }
}

TEST(CodecHotPath, EncodeIntoMatchesEncode) {
    Rng rng(19);
    for (int i = 0; i < 200; ++i) {
        DmuSample s;
        s.seq = static_cast<std::uint8_t>(i);
        for (auto& g : s.gyro)
            g = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
        for (auto& a : s.accel)
            a = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
        const auto [gf, af] = DmuCodec::encode(s);
        CanFrame g2, a2;
        DmuCodec::encode_into(s, g2, a2);
        EXPECT_EQ(g2, gf);
        EXPECT_EQ(a2, af);
    }
}

// --- Full chain under fault injection ---------------------------------------

/// End-to-end: the drain-based chain (as BoresightSystem::feed wires it)
/// produces the same decoded samples as the legacy receive_until loop,
/// including when faults corrupt the stream.
TEST(ChainHotPath, DrainChainMatchesReceiveChainUnderFaults) {
    UartFaults faults;
    faults.drop_probability = 0.01;
    faults.bit_flip_probability = 0.01;
    faults.framing_error_probability = 0.01;

    const auto run = [&](bool use_drain) {
        CanBus bus;
        UartLink uart(115200.0, faults, /*fault_seed=*/1234);
        CanSerialBridge bridge(uart);
        bus.set_direct_delivery(
            [](void* ctx, const CanFrame& f, double t) {
                static_cast<CanSerialBridge*>(ctx)->forward(f, t);
            },
            &bridge);
        CanSerialDeframer deframer;
        DmuCodec codec;
        std::vector<DmuSample> got;
        Rng rng(4321);
        const auto consume = [&](const UartByte& byte) {
            if (auto frame = deframer.feed(byte)) {
                if (auto sample = codec.feed(*frame, byte.t)) got.push_back(*sample);
            }
        };
        for (int i = 0; i < 200; ++i) {
            DmuSample s;
            s.seq = static_cast<std::uint8_t>(i);
            for (auto& g : s.gyro)
                g = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
            for (auto& a : s.accel)
                a = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
            const auto [gf, af] = DmuCodec::encode(s);
            const double t = 0.01 * i;
            bus.send(gf, t);
            bus.send(af, t);
            bus.advance_to(t + 0.005);
            if (use_drain) {
                uart.drain_until(t + 0.005, consume);
            } else {
                for (const auto& byte : uart.receive_until(t + 0.005))
                    consume(byte);
            }
        }
        return got;
    };

    const auto a = run(false);
    const auto b = run(true);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

// --- Mid-stream fault toggles -------------------------------------------------

/// The fault campaigns arm faults on links that have already carried clean
/// traffic. Draws are keyed on (fault_seed, byte index) and the zero-fault
/// fast path still advances the index, so a link toggled mid-stream must
/// give every post-toggle byte exactly the fate a link faulted from byte 0
/// gives it — values, timestamps, framing flags and loss counters alike.
TEST(UartFaultToggle, MidStreamEnableMatchesConstructedFaultedLink) {
    UartFaults faults;
    faults.drop_probability = 0.05;
    faults.bit_flip_probability = 0.05;
    faults.framing_error_probability = 0.05;
    constexpr std::uint64_t kSeed = 42;
    UartLink from_start(115200.0, faults, kSeed);
    UartLink toggled(115200.0, {}, kSeed);  // clean fast path first

    Rng sched(7);
    double t = 0.0;
    const auto send_burst = [&](int n) {
        for (int i = 0; i < n; ++i) {
            const auto byte =
                static_cast<std::uint8_t>(sched.uniform_int(0, 255));
            from_start.send(byte, t);
            toggled.send(byte, t);
        }
        t += sched.uniform(0.001, 0.05);
    };

    // Phase 1: both links carry the same pre-toggle traffic (and consume
    // the same line time — dropped bytes still occupy the wire).
    for (int burst = 0; burst < 20; ++burst) send_burst(
        static_cast<int>(sched.uniform_int(1, 30)));
    from_start.drain_until(1e9, [](const UartByte&) {});
    toggled.drain_until(1e9, [](const UartByte&) {});
    ASSERT_EQ(toggled.bytes_dropped(), 0u);
    ASSERT_EQ(toggled.bytes_corrupted(), 0u);
    const std::size_t dropped_before = from_start.bytes_dropped();
    const std::size_t corrupted_before = from_start.bytes_corrupted();

    // Phase 2: arm the faults mid-stream and compare byte for byte.
    toggled.set_faults(faults);
    std::vector<UartByte> via_start, via_toggle;
    for (int burst = 0; burst < 40; ++burst) {
        send_burst(static_cast<int>(sched.uniform_int(1, 30)));
        from_start.drain_until(t, [&](const UartByte& b) {
            via_start.push_back(b);
        });
        toggled.drain_until(t, [&](const UartByte& b) {
            via_toggle.push_back(b);
        });
    }
    from_start.drain_until(1e9, [&](const UartByte& b) {
        via_start.push_back(b);
    });
    toggled.drain_until(1e9, [&](const UartByte& b) {
        via_toggle.push_back(b);
    });

    ASSERT_EQ(via_start.size(), via_toggle.size());
    for (std::size_t i = 0; i < via_start.size(); ++i) {
        EXPECT_EQ(via_start[i].value, via_toggle[i].value) << "byte " << i;
        EXPECT_DOUBLE_EQ(via_start[i].t, via_toggle[i].t) << "byte " << i;
        EXPECT_EQ(via_start[i].framing_error, via_toggle[i].framing_error)
            << "byte " << i;
    }
    EXPECT_EQ(toggled.bytes_dropped(),
              from_start.bytes_dropped() - dropped_before);
    EXPECT_EQ(toggled.bytes_corrupted(),
              from_start.bytes_corrupted() - corrupted_before);
    // The faults actually bit in phase 2 — the equality above is not
    // vacuous.
    ASSERT_GT(toggled.bytes_dropped(), 0u);
    ASSERT_GT(toggled.bytes_corrupted(), 0u);
}

/// CAN analogue: burst-loss draws are keyed on (seed, frame index) and the
/// index counts every sent frame, so past any point no burst straddles,
/// frame fates after a mid-run toggle match a bus faulted from frame 0.
TEST(CanFaultToggle, MidRunEnableMatchesConstructedFaultedBus) {
    const CanFaults faults{.burst_probability = 0.08,
                           .burst_frames = 3,
                           .seed = 0xC4A};
    constexpr std::uint16_t kFrames = 300;
    Rng rng(0x70661E);
    std::vector<CanFrame> frames;
    std::vector<double> times;
    double t = 0.0;
    for (std::uint16_t i = 0; i < kFrames; ++i) {
        CanFrame f;
        f.id = i;
        f.dlc = 8;
        f.data[0] = static_cast<std::uint8_t>(i >> 8);
        f.data[1] = static_cast<std::uint8_t>(i & 0xFF);
        for (std::size_t k = 2; k < 8; ++k)
            f.data[k] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        frames.push_back(f);
        times.push_back(t);
        t += rng.uniform(0.0, 0.001);
    }
    const auto index_of = [](const CanFrame& f) {
        return static_cast<std::size_t>((f.data[0] << 8) | f.data[1]);
    };

    // Reference: faulted from frame 0. Record each frame's fate and time.
    CanBus from_start(500000.0, faults);
    std::vector<double> fate(kFrames, -1.0);  // delivery time, -1 = lost
    from_start.on_delivery(
        [&](const CanFrame& f, double td) { fate[index_of(f)] = td; });
    for (std::uint16_t i = 0; i < kFrames; ++i)
        from_start.send(frames[i], times[i]);
    from_start.advance_to(10.0);
    ASSERT_GT(from_start.frames_lost(), 0u);

    // Toggle at a point no loss burst straddles: both frames right before
    // it were delivered, so any burst covering the toggle frame would have
    // to start there — a draw both buses share.
    std::size_t toggle = kFrames / 2;
    while (toggle < kFrames && (fate[toggle - 1] < 0 || fate[toggle - 2] < 0))
        ++toggle;
    ASSERT_LT(toggle, static_cast<std::size_t>(kFrames));

    CanBus toggled;  // clean until the toggle
    std::vector<double> fate2(kFrames, -1.0);
    toggled.on_delivery(
        [&](const CanFrame& f, double td) { fate2[index_of(f)] = td; });
    for (std::size_t i = 0; i < toggle; ++i)
        toggled.send(frames[i], times[i]);
    toggled.set_faults(faults);
    for (std::size_t i = toggle; i < kFrames; ++i)
        toggled.send(frames[i], times[i]);
    toggled.advance_to(10.0);

    EXPECT_EQ(toggled.frames_lost(),
              from_start.frames_lost() -
                  static_cast<std::size_t>(std::count(
                      fate.begin(), fate.begin() + toggle, -1.0)));
    for (std::size_t i = toggle; i < kFrames; ++i) {
        EXPECT_EQ(fate2[i] < 0, fate[i] < 0) << "frame " << i;
        if (fate[i] >= 0) {
            EXPECT_DOUBLE_EQ(fate2[i], fate[i]) << "frame " << i;
        }
    }
}

}  // namespace
