#include <gtest/gtest.h>

#include <cmath>

#include "core/multi_aligner.hpp"
#include "util/rng.hpp"

namespace {

using namespace ob::core;
using ob::math::dcm_from_euler;
using ob::math::deg2rad;
using ob::math::EulerAngles;
using ob::math::rad2deg;
using ob::math::Vec2;
using ob::math::Vec3;
using ob::util::Rng;

constexpr double kG = 9.80665;

Vec2 ideal_acc(const EulerAngles& mis, const Vec3& f_body) {
    const Vec3 f_s = dcm_from_euler(mis) * f_body;
    return Vec2{f_s[0], f_s[1]};
}

Vec3 rich_excitation(int k) {
    const double phase = 0.013 * k;
    return Vec3{2.0 * std::sin(phase), 1.5 * std::cos(1.7 * phase), -kG};
}

TEST(MultiAligner, AlignsSeveralSensorsSimultaneously) {
    MultiSensorAligner aligner;
    const auto cam = aligner.add_sensor("camera");
    const auto lidar = aligner.add_sensor("lidar");
    const auto radar = aligner.add_sensor("radar");
    EXPECT_EQ(aligner.sensor_count(), 3u);

    const EulerAngles cam_truth = EulerAngles::from_deg(1.0, -2.0, 1.5);
    const EulerAngles lidar_truth = EulerAngles::from_deg(-0.5, 0.8, -1.0);
    const EulerAngles radar_truth = EulerAngles::from_deg(2.0, 0.0, 0.5);

    Rng rng(5);
    for (int k = 0; k < 6000; ++k) {
        const Vec3 f = rich_excitation(k);
        const auto noisy = [&](const EulerAngles& t) {
            return ideal_acc(t, f) +
                   Vec2{rng.gaussian(0.01), rng.gaussian(0.01)};
        };
        aligner.step(f, {noisy(cam_truth), noisy(lidar_truth),
                         noisy(radar_truth)});
    }

    EXPECT_NEAR(rad2deg(aligner.misalignment(cam).pitch), -2.0, 0.1);
    EXPECT_NEAR(rad2deg(aligner.misalignment(lidar).roll), -0.5, 0.1);
    EXPECT_NEAR(rad2deg(aligner.misalignment(radar).roll), 2.0, 0.1);
}

TEST(MultiAligner, RelativeAlignmentMatchesTruth) {
    MultiSensorAligner aligner;
    const auto a = aligner.add_sensor("video");
    const auto b = aligner.add_sensor("lidar");
    const EulerAngles ta = EulerAngles::from_deg(1.0, -1.0, 2.0);
    const EulerAngles tb = EulerAngles::from_deg(-1.5, 0.5, -0.5);

    for (int k = 0; k < 5000; ++k) {
        const Vec3 f = rich_excitation(k);
        aligner.step(f, {ideal_acc(ta, f), ideal_acc(tb, f)});
    }

    // Ground-truth relative DCM through the body frame.
    const auto rel_truth = ob::math::euler_from_dcm(
        dcm_from_euler(tb) * dcm_from_euler(ta).transposed());
    const EulerAngles rel = aligner.relative_alignment(a, b);
    EXPECT_NEAR(rel.roll, rel_truth.roll, deg2rad(0.05));
    EXPECT_NEAR(rel.pitch, rel_truth.pitch, deg2rad(0.05));
    EXPECT_NEAR(rel.yaw, rel_truth.yaw, deg2rad(0.05));
    // Relative confidence is the RSS of the two sensors'.
    const auto rs3 = aligner.relative_sigma3(a, b);
    EXPECT_GE(rs3[0], aligner.sigma3(a)[0]);
    EXPECT_GE(rs3[0], aligner.sigma3(b)[0]);
}

TEST(MultiAligner, ToleratesMissingReadings) {
    MultiSensorAligner aligner;
    (void)aligner.add_sensor("camera");
    (void)aligner.add_sensor("lidar");
    const EulerAngles truth = EulerAngles::from_deg(1.0, 1.0, 0.5);

    for (int k = 0; k < 6000; ++k) {
        const Vec3 f = rich_excitation(k);
        // The lidar reports at a third of the camera rate.
        std::vector<std::optional<Vec2>> readings(2);
        readings[0] = ideal_acc(truth, f);
        if (k % 3 == 0) readings[1] = ideal_acc(truth, f);
        aligner.step(f, readings);
    }
    EXPECT_NEAR(rad2deg(aligner.misalignment(0).roll), 1.0, 0.05);
    EXPECT_NEAR(rad2deg(aligner.misalignment(1).roll), 1.0, 0.05);
    // Fewer updates -> wider (or equal) confidence for the slower sensor.
    EXPECT_GE(aligner.sigma3(1)[0], aligner.sigma3(0)[0] * 0.99);
}

TEST(MultiAligner, ValidatesInputs) {
    MultiSensorAligner aligner;
    (void)aligner.add_sensor("only");
    EXPECT_THROW(aligner.step(Vec3{}, {}), std::invalid_argument);
    EXPECT_THROW((void)aligner.misalignment(5), std::out_of_range);
    EXPECT_THROW((void)aligner.relative_alignment(0, 3), std::out_of_range);
}

}  // namespace
