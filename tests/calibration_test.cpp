#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "core/calibration.hpp"
#include "math/matrix.hpp"
#include "system/fleet.hpp"
#include "util/rng.hpp"

// The §11.1 calibration path, bottom to top: the CalibrationAccumulator's
// bias/stderr/noise statistics against known injected errors, then the
// fleet-level calibration phase — bias-subtracted runs must land far inside
// the envelopes their uncalibrated twins only just satisfy, on both fusion
// processors — and the adaptive-tuner knobs now exposed on FleetJob.

namespace {

using namespace ob;
using math::Vec2;
using math::Vec3;
using Processor = system::BoresightSystem::Processor;

constexpr double kGravity = 9.80665;

// --- CalibrationAccumulator statistics --------------------------------------

TEST(CalibrationAccumulator, RecoversInjectedBiasOnLevelPlatform) {
    const Vec2 injected{0.031, -0.044};
    const double noise = 0.005;
    const Vec3 f_level{0.0, 0.0, -kGravity};

    core::CalibrationAccumulator accum;
    util::Rng rng(99);
    const std::size_t n = 20000;
    for (std::size_t i = 0; i < n; ++i) {
        const Vec2 pred = core::BoresightEkf::predict_measurement(
            Vec3{}, Vec2{}, f_level);
        const Vec2 z{pred[0] + injected[0] + rng.gaussian(noise),
                     pred[1] + injected[1] + rng.gaussian(noise)};
        accum.add(f_level, z);
    }
    ASSERT_EQ(accum.samples(), n);

    const Vec2 bias = accum.bias();
    const Vec2 stderr_est = accum.bias_stderr();
    for (std::size_t i = 0; i < 2; ++i) {
        // The estimate must land within 5 standard errors of truth, and the
        // standard error itself must match sigma/sqrt(n).
        EXPECT_NEAR(bias[i], injected[i], 5.0 * noise / std::sqrt(double(n)));
        EXPECT_NEAR(stderr_est[i], noise / std::sqrt(double(n)),
                    0.2 * noise / std::sqrt(double(n)));
    }
    EXPECT_NEAR(accum.noise_sigma(), noise, 0.1 * noise);
}

TEST(CalibrationAccumulator, EmptyAndSingleSampleEdges) {
    core::CalibrationAccumulator accum;
    EXPECT_EQ(accum.samples(), 0u);
    EXPECT_EQ(accum.bias()[0], 0.0);
    EXPECT_EQ(accum.bias()[1], 0.0);
    EXPECT_EQ(accum.bias_stderr()[0], 0.0);
    EXPECT_EQ(accum.noise_sigma(), 0.0);

    accum.add(Vec3{0.0, 0.0, -kGravity}, Vec2{0.1, 0.2});
    EXPECT_EQ(accum.samples(), 1u);
    // One sample defines a mean but no spread.
    EXPECT_EQ(accum.bias_stderr()[0], 0.0);
    EXPECT_EQ(accum.noise_sigma(), 0.0);
}

TEST(CalibrationAccumulator, StandardErrorTightensWithSamples) {
    const Vec3 f_level{0.0, 0.0, -kGravity};
    core::CalibrationAccumulator few, many;
    util::Rng rng_few(7), rng_many(7);
    for (std::size_t i = 0; i < 100; ++i) {
        few.add(f_level, Vec2{rng_few.gaussian(0.01), rng_few.gaussian(0.01)});
    }
    for (std::size_t i = 0; i < 10000; ++i) {
        many.add(f_level,
                 Vec2{rng_many.gaussian(0.01), rng_many.gaussian(0.01)});
    }
    EXPECT_LT(many.bias_stderr()[0], few.bias_stderr()[0]);
    EXPECT_LT(many.bias_stderr()[1], few.bias_stderr()[1]);
}

// --- Fleet calibration phase ------------------------------------------------

system::FleetResult run_static(Processor proc, bool calibrate) {
    system::FleetJob job;
    job.scenario = "static-level";
    job.processor = proc;
    if (calibrate) job.calibration = system::FleetCalibration{30.0};
    return system::run_fleet_job(job);
}

TEST(FleetCalibration, RecordsBiasAndSampleCount) {
    const auto r = run_static(Processor::kNative, true);
    // 30 s of level-platform dwell at the 100 Hz sensor rate.
    EXPECT_GE(r.calibration_samples, 3000u);
    // The measured combined bias must be of the instruments' magnitude:
    // nonzero, but well under the ~0.045 m/s² 1-sigma of the combined
    // ACC+IMU bias draws.
    const double mag = std::hypot(r.calibrated_bias[0], r.calibrated_bias[1]);
    EXPECT_GT(mag, 1e-4);
    EXPECT_LT(mag, 0.15);
    EXPECT_GT(r.calibration_noise, 0.0);
}

TEST(FleetCalibration, UncalibratedJobReportsNoCalibration) {
    const auto r = run_static(Processor::kNative, false);
    EXPECT_EQ(r.calibration_samples, 0u);
    EXPECT_EQ(r.calibrated_bias[0], 0.0);
    EXPECT_EQ(r.calibrated_bias[1], 0.0);
    EXPECT_EQ(r.calibration_noise, 0.0);
}

TEST(FleetCalibration, BiasSubtractionTightensStaticErrorsNative) {
    const auto uncal = run_static(Processor::kNative, false);
    const auto cal = run_static(Processor::kNative, true);
    // On a level platform the filter cannot separate ACC bias from
    // misalignment, so the uncalibrated run carries the bias straight into
    // its roll/pitch estimate. Calibration removes it: the measured factors
    // here are ~5x on roll and pitch (0.21 -> 0.04 deg); assert a
    // conservative 2x so last-ulp toolchain drift cannot flake the suite.
    EXPECT_LT(cal.trace.worst_roll_err_deg,
              0.5 * uncal.trace.worst_roll_err_deg);
    EXPECT_LT(cal.trace.worst_pitch_err_deg,
              0.5 * uncal.trace.worst_pitch_err_deg);
    EXPECT_TRUE(cal.within_envelope);
}

TEST(FleetCalibration, BiasSubtractionTightensStaticErrorsSabre) {
    const auto uncal = run_static(Processor::kSabre, false);
    const auto cal = run_static(Processor::kSabre, true);
    // Same instruments, same §11.1 procedure, but the bias is folded back
    // into the ADXL duty-cycle timings before the firmware decodes them.
    EXPECT_LT(cal.trace.worst_roll_err_deg,
              0.5 * uncal.trace.worst_roll_err_deg);
    EXPECT_LT(cal.trace.worst_pitch_err_deg,
              0.5 * uncal.trace.worst_pitch_err_deg);
    EXPECT_TRUE(cal.within_envelope);
}

TEST(FleetCalibration, CalibrationIsDeterministicPerJob) {
    const auto a = run_static(Processor::kNative, true);
    const auto b = run_static(Processor::kNative, true);
    EXPECT_EQ(a.calibrated_bias[0], b.calibrated_bias[0]);
    EXPECT_EQ(a.calibrated_bias[1], b.calibrated_bias[1]);
    EXPECT_EQ(a.calibration_samples, b.calibration_samples);
    EXPECT_EQ(a.result.estimate.roll, b.result.estimate.roll);
}

// --- Adaptive tuner knobs on FleetJob ---------------------------------------

TEST(FleetTuner, DefaultTunerReproducesTheSec11Retune) {
    system::FleetJob job;
    job.scenario = "city-drive";
    job.use_adaptive_tuner = true;
    job.meas_noise_mps2 = 0.003;  // paper's quietest static tuning
    const auto r = system::run_fleet_job(job);
    // Driving residuals force the noise out of the static band toward the
    // paper's 0.015+ retune (measured: 0.0145 after 19 adjustments).
    EXPECT_GE(r.result.meas_noise, 0.012);
    EXPECT_GT(r.final_status.tuner_adjustments, 0u);
    EXPECT_TRUE(r.within_envelope);
}

TEST(FleetTuner, CeilingOverrideCapsTheRetune) {
    system::FleetJob job;
    job.scenario = "city-drive";
    job.use_adaptive_tuner = true;
    job.meas_noise_mps2 = 0.003;
    core::AdaptiveTunerConfig tuner;
    tuner.ceiling_mps2 = 0.008;
    job.tuner = tuner;
    const auto r = system::run_fleet_job(job);
    EXPECT_LE(r.result.meas_noise, 0.008 + 1e-12);
    EXPECT_GT(r.final_status.tuner_adjustments, 0u);
}

TEST(FleetTuner, TunerOffLeavesSpecNoiseUntouched) {
    system::FleetJob job;
    job.scenario = "city-drive";
    const auto r = system::run_fleet_job(job);
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    EXPECT_EQ(r.result.meas_noise, spec.meas_noise_mps2);
    EXPECT_EQ(r.final_status.tuner_adjustments, 0u);
}

}  // namespace
