#include <gtest/gtest.h>

#include <cmath>

#include "math/rotation.hpp"
#include "util/rng.hpp"
#include "video/affine.hpp"
#include "video/pipeline.hpp"
#include "video/trig_lut.hpp"

// Geometric and pipeline invariants of the video path, swept over random
// angles and coordinates.

namespace {

using namespace ob::video;
using ob::math::deg2rad;
using ob::util::Rng;

class AffinePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AffinePropertyTest, RotationPreservesRadiusWithinQuantization) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 1);
    const TrigLut lut;
    const Coord centre{160, 120};
    for (int i = 0; i < 500; ++i) {
        const auto bam =
            static_cast<std::uint32_t>(rng.uniform_int(0, 1023));
        const Coord in{static_cast<std::int32_t>(rng.uniform_int(0, 319)),
                       static_cast<std::int32_t>(rng.uniform_int(0, 239))};
        const Coord out = rotate_coordinates(lut, bam, in, centre);
        const double r_in = std::hypot(in.x - centre.x, in.y - centre.y);
        const double r_out = std::hypot(out.x - centre.x, out.y - centre.y);
        // Fixed-point + truncation can move a point by ~sqrt(2) px.
        EXPECT_NEAR(r_out, r_in, 2.0) << "bam=" << bam;
    }
}

TEST_P(AffinePropertyTest, OppositeRotationsComposeToIdentity) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 50);
    const TrigLut lut;
    const Coord centre{100, 100};
    for (int i = 0; i < 300; ++i) {
        const auto bam =
            static_cast<std::uint32_t>(rng.uniform_int(0, 1023));
        const Coord in{static_cast<std::int32_t>(rng.uniform_int(20, 180)),
                       static_cast<std::int32_t>(rng.uniform_int(20, 180))};
        const Coord fwd = rotate_coordinates(lut, bam, in, centre);
        const Coord back =
            rotate_coordinates(lut, (1024 - bam) & 1023, fwd, centre);
        // Round trip within the two truncation steps.
        EXPECT_NEAR(back.x, in.x, 2.0);
        EXPECT_NEAR(back.y, in.y, 2.0);
    }
}

TEST_P(AffinePropertyTest, QuarterTurnsAreExact) {
    const TrigLut lut;
    const Coord centre{50, 50};
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
    for (int i = 0; i < 200; ++i) {
        const Coord in{static_cast<std::int32_t>(rng.uniform_int(0, 100)),
                       static_cast<std::int32_t>(rng.uniform_int(0, 100))};
        // 90 degrees = index 256: sin=1, cos=0 exactly representable.
        const Coord q = rotate_coordinates(lut, 256, in, centre);
        EXPECT_EQ(q.x, centre.x - (in.y - centre.y));
        EXPECT_EQ(q.y, centre.y + (in.x - centre.x));
        // 180 degrees = index 512.
        const Coord h = rotate_coordinates(lut, 512, in, centre);
        EXPECT_EQ(h.x, centre.x - (in.x - centre.x));
        EXPECT_EQ(h.y, centre.y - (in.y - centre.y));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffinePropertyTest, ::testing::Range(0, 6));

TEST(PipelineProperty, AngleChangeMidStreamAppliesToNewInputsOnly) {
    // Writing the angle register mid-frame must affect coordinates fed
    // afterwards, while in-flight pixels keep their original rotation —
    // the latch-at-stage-1 behaviour of the hardware.
    const TrigLut lut;
    const Coord centre{0, 0};
    RotatePipeline pipe(lut, centre);
    ob::hcl::Simulation sim;
    sim.add(pipe);

    pipe.set_angle(0);  // identity
    pipe.feed(Coord{100, 0});
    sim.step();
    pipe.set_angle(256);  // 90 degrees for subsequent pixels
    pipe.feed(Coord{100, 0});
    sim.step();
    std::vector<Coord> outs;
    for (int i = 0; i < RotatePipeline::kLatency; ++i) {
        sim.step();
        if (const auto o = pipe.output()) outs.push_back(*o);
    }
    // Collect any output that appeared during the feeding steps too.
    ASSERT_EQ(outs.size(), 2u);
    EXPECT_EQ(outs[0].x, 100);  // identity rotation
    EXPECT_EQ(outs[0].y, 0);
    EXPECT_EQ(outs[1].x, 0);  // quarter turn
    EXPECT_EQ(outs[1].y, 100);
}

TEST(PipelineProperty, BubblesPropagate) {
    // A gap in the input stream must surface as a gap in the output
    // stream exactly kLatency cycles later.
    const TrigLut lut;
    RotatePipeline pipe(lut, Coord{0, 0});
    ob::hcl::Simulation sim;
    sim.add(pipe);
    std::vector<bool> out_valid;
    for (int cycle = 0; cycle < 12; ++cycle) {
        if (cycle != 3) pipe.feed(Coord{cycle, 0});  // bubble at cycle 3
        sim.step();
        out_valid.push_back(pipe.output().has_value());
    }
    // First output at cycle index 4 (5th cycle); bubble surfaces at 3+5.
    for (int cycle = 0; cycle < 12; ++cycle) {
        const bool expect_valid =
            cycle >= RotatePipeline::kLatency - 1 && cycle != 3 + RotatePipeline::kLatency - 1;
        EXPECT_EQ(out_valid[static_cast<std::size_t>(cycle)], expect_valid)
            << "cycle " << cycle;
    }
}

TEST(TrigLutProperty, SinCosQuadrantSymmetries) {
    const TrigLut lut;
    for (std::uint32_t i = 0; i < 256; ++i) {
        // sin(pi - x) == sin(x)
        EXPECT_EQ(lut.sin_at(512 - i).raw(), lut.sin_at(i).raw());
        // sin(-x) == -sin(x)
        EXPECT_EQ(lut.sin_at(1024 - i).raw(),
                  i == 0 ? lut.sin_at(0).raw() : -lut.sin_at(i).raw());
        // cos(x) == sin(x + pi/2) by construction; check cos symmetry.
        EXPECT_EQ(lut.cos_at(1024 - i).raw(), lut.cos_at(i).raw());
    }
}

}  // namespace
