#include <gtest/gtest.h>

#include "math/rotation.hpp"
#include "sim/scenario.hpp"
#include "system/boresight_system.hpp"
#include "system/experiment.hpp"

namespace {

using namespace ob;
using math::deg2rad;
using math::EulerAngles;
using math::rad2deg;

TEST(BoresightSystem, NativeEndToEndWithFullTransport) {
    const EulerAngles truth = EulerAngles::from_deg(1.0, -1.5, 2.0);
    auto scfg = sim::ScenarioConfig::static_tilted(
        120.0, truth, EulerAngles::from_deg(12.0, 8.0, 0.0));
    // Clean-ish instruments so the check isolates transport correctness.
    scfg.acc_errors.bias_sigma = 0.0;
    scfg.imu_errors.accel_bias_sigma = 0.0;
    sim::Scenario sc(scfg, 5);

    system::BoresightSystem::Config cfg;
    cfg.filter.meas_noise_mps2 = 0.0075;
    system::BoresightSystem sys(cfg);
    while (auto s = sc.next()) sys.feed(sc, *s);

    const auto st = sys.status();
    EXPECT_GT(st.updates, 11000u);  // nearly every epoch paired
    EXPECT_NEAR(rad2deg(st.estimate.roll), 1.0, 0.3);
    EXPECT_NEAR(rad2deg(st.estimate.pitch), -1.5, 0.3);
    EXPECT_NEAR(rad2deg(st.estimate.yaw), 2.0, 0.6);
    EXPECT_EQ(st.dmu_frames_lost, 0u);
    EXPECT_EQ(st.acc_packets_lost, 0u);
    // CAN at 500 kbit/s: two ~130-bit frames per 10 ms epoch -> worst
    // queueing latency well under one epoch.
    EXPECT_LT(st.worst_transport_latency, 0.002);
}

TEST(BoresightSystem, SabreProcessorEndToEnd) {
    const EulerAngles truth = EulerAngles::from_deg(0.8, -0.6, 0.0);
    auto scfg = sim::ScenarioConfig::static_level(30.0, truth);
    scfg.acc_errors.bias_sigma = 0.0;
    scfg.imu_errors.accel_bias_sigma = 0.0;
    sim::Scenario sc(scfg, 6);

    system::BoresightSystem::Config cfg;
    cfg.processor = system::BoresightSystem::Processor::kSabre;
    cfg.sabre.r_sigma = 0.0075;
    system::BoresightSystem sys(cfg);
    while (auto s = sc.next()) sys.feed(sc, *s);

    const auto st = sys.status();
    EXPECT_GT(st.updates, 2900u);
    EXPECT_NEAR(rad2deg(st.estimate.roll), 0.8, 0.3);
    EXPECT_NEAR(rad2deg(st.estimate.pitch), -0.6, 0.3);
}

TEST(BoresightSystem, SurvivesLinkFaults) {
    // Drop 2% of DMU bridge bytes and 2% of ACC bytes: epochs are lost but
    // the filter still converges and loss counters report the damage.
    const EulerAngles truth = EulerAngles::from_deg(1.2, 0.9, 0.0);
    auto scfg = sim::ScenarioConfig::static_level(120.0, truth);
    scfg.acc_errors.bias_sigma = 0.0;
    scfg.imu_errors.accel_bias_sigma = 0.0;
    sim::Scenario sc(scfg, 7);

    system::BoresightSystem::Config cfg;
    cfg.filter.meas_noise_mps2 = 0.0075;
    cfg.filter.nis_gate = 13.8;  // belt-and-braces against surviving garbage
    cfg.dmu_link_faults.drop_probability = 0.02;
    cfg.acc_link_faults.bit_flip_probability = 0.02;
    system::BoresightSystem sys(cfg);
    while (auto s = sc.next()) sys.feed(sc, *s);

    const auto st = sys.status();
    EXPECT_GT(st.updates, 6000u) << "most epochs must still pair up";
    EXPECT_LT(st.updates, 12001u);
    EXPECT_GT(st.dmu_frames_lost + st.acc_packets_lost, 20u)
        << "fault counters must register the injected damage";
    EXPECT_NEAR(rad2deg(st.estimate.roll), 1.2, 0.3);
    EXPECT_NEAR(rad2deg(st.estimate.pitch), 0.9, 0.3);
}

TEST(BoresightSystem, AdaptiveTunerRaisesNoiseWhenDriving) {
    auto scfg = sim::ScenarioConfig::dynamic_city(
        120.0, EulerAngles::from_deg(1, 1, 1), 13);
    sim::Scenario sc(scfg, 8);
    system::BoresightSystem::Config cfg;
    cfg.filter.meas_noise_mps2 = 0.003;  // static tuning, wrong for driving
    cfg.use_adaptive_tuner = true;
    system::BoresightSystem sys(cfg);
    while (auto s = sc.next()) sys.feed(sc, *s);
    EXPECT_GT(sys.status().measurement_noise, 0.01)
        << "tuner must have raised R from the static value";
}

}  // namespace
