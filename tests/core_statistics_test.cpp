#include <gtest/gtest.h>

#include <cmath>

#include "core/boresight_ekf.hpp"
#include "core/kalman.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

// Statistical-consistency properties of the filter: the quantities the
// paper's §11 procedure relies on (residual envelopes, confidence levels)
// must have the distributions the theory promises.

namespace {

using namespace ob::core;
using ob::math::dcm_from_euler;
using ob::math::EulerAngles;
using ob::math::Mat;
using ob::math::Vec;
using ob::math::Vec2;
using ob::math::Vec3;
using ob::util::Rng;
using ob::util::RunningStats;

constexpr double kG = 9.80665;

Vec2 ideal_acc(const EulerAngles& mis, const Vec3& f_body) {
    const Vec3 f_s = dcm_from_euler(mis) * f_body;
    return Vec2{f_s[0], f_s[1]};
}

Vec3 rich_excitation(int k) {
    const double phase = 0.013 * k;
    return Vec3{2.0 * std::sin(phase), 1.5 * std::cos(1.7 * phase), -kG};
}

TEST(FilterStatistics, NisFollowsChiSquare2) {
    // After convergence the NIS of a consistent filter is chi-square with
    // 2 DOF: mean 2, variance 4, P(NIS > 5.99) = 5%.
    const EulerAngles truth = EulerAngles::from_deg(1.0, -1.0, 0.5);
    BoresightConfig cfg;
    cfg.meas_noise_mps2 = 0.01;
    cfg.jacobian = JacobianMode::kNumeric;
    BoresightEkf ekf(cfg);
    Rng rng(11);
    RunningStats nis;
    int over_95 = 0;
    int n = 0;
    for (int k = 0; k < 30000; ++k) {
        const Vec3 f = rich_excitation(k);
        const Vec2 z = ideal_acc(truth, f) +
                       Vec2{rng.gaussian(0.01), rng.gaussian(0.01)};
        const auto up = ekf.step(f, z);
        if (k > 2000) {
            nis.add(up.nis);
            ++n;
            if (up.nis > 5.991) ++over_95;
        }
    }
    EXPECT_NEAR(nis.mean(), 2.0, 0.1);
    EXPECT_NEAR(nis.variance(), 4.0, 0.6);
    EXPECT_NEAR(static_cast<double>(over_95) / n, 0.05, 0.012);
}

TEST(FilterStatistics, NormalizedResidualsAreStandardGaussian) {
    // residual / (sigma3/3) must be ~N(0,1) for a consistent filter.
    const EulerAngles truth = EulerAngles::from_deg(0.5, 0.5, 0.5);
    BoresightConfig cfg;
    cfg.meas_noise_mps2 = 0.0075;
    BoresightEkf ekf(cfg);
    Rng rng(13);
    RunningStats norm_res;
    for (int k = 0; k < 30000; ++k) {
        const Vec3 f = rich_excitation(k);
        const Vec2 z = ideal_acc(truth, f) +
                       Vec2{rng.gaussian(0.0075), rng.gaussian(0.0075)};
        const auto up = ekf.step(f, z);
        if (k > 2000) {
            norm_res.add(up.residual[0] / (up.sigma3[0] / 3.0));
            norm_res.add(up.residual[1] / (up.sigma3[1] / 3.0));
        }
    }
    EXPECT_NEAR(norm_res.mean(), 0.0, 0.02);
    EXPECT_NEAR(norm_res.stddev(), 1.0, 0.03);
}

TEST(FilterStatistics, MonteCarloErrorMatchesReportedCovariance) {
    // Over many independent runs, the empirical spread of the final
    // estimate must match the filter's own reported sigma (the "filter
    // consistency" property behind the paper's 99%-confidence claim).
    const EulerAngles truth = EulerAngles::from_deg(1.0, -0.5, 0.8);
    RunningStats roll_err_over_sigma;
    for (std::uint64_t trial = 0; trial < 60; ++trial) {
        BoresightConfig cfg;
        cfg.meas_noise_mps2 = 0.01;
        cfg.jacobian = JacobianMode::kNumeric;
        BoresightEkf ekf(cfg);
        Rng rng(trial * 31 + 7);
        for (int k = 0; k < 2000; ++k) {
            const Vec3 f = rich_excitation(k);
            const Vec2 z = ideal_acc(truth, f) +
                           Vec2{rng.gaussian(0.01), rng.gaussian(0.01)};
            (void)ekf.step(f, z);
        }
        const double sigma_roll = ekf.misalignment_sigma3()[0] / 3.0;
        roll_err_over_sigma.add(
            (ekf.misalignment().roll - truth.roll) / sigma_roll);
    }
    // Normalized errors ~ N(0,1): mean near 0, stddev near 1 (loose
    // bounds for 60 trials).
    EXPECT_NEAR(roll_err_over_sigma.mean(), 0.0, 0.45);
    EXPECT_GT(roll_err_over_sigma.stddev(), 0.6);
    EXPECT_LT(roll_err_over_sigma.stddev(), 1.6);
}

TEST(FilterStatistics, CovarianceIsMonotoneInMeasurementNoise) {
    // More assumed measurement noise -> slower covariance collapse. The
    // ordering must hold at every step (same data, two filters).
    BoresightConfig quiet;
    quiet.meas_noise_mps2 = 0.005;
    BoresightConfig loud;
    loud.meas_noise_mps2 = 0.05;
    BoresightEkf a(quiet), b(loud);
    for (int k = 0; k < 2000; ++k) {
        const Vec3 f = rich_excitation(k);
        const Vec2 z = ideal_acc(EulerAngles{}, f);
        (void)a.step(f, z);
        (void)b.step(f, z);
        EXPECT_LE(a.misalignment_sigma3()[0], b.misalignment_sigma3()[0]);
        EXPECT_LE(a.misalignment_sigma3()[1], b.misalignment_sigma3()[1]);
    }
}

TEST(FilterStatistics, ProcessNoiseSetsSteadyStateFloor) {
    // With nonzero process noise the covariance cannot collapse to zero:
    // it reaches a steady state balancing information gain and injection.
    BoresightConfig cfg;
    cfg.meas_noise_mps2 = 0.01;
    cfg.angle_process_noise = 1e-5;
    BoresightEkf ekf(cfg);
    const Vec3 f{0.0, 0.0, -kG};
    for (int k = 0; k < 20000; ++k) (void)ekf.step(f, Vec2{0.0, 0.0});
    const double s3_20k = ekf.misalignment_sigma3()[0];
    for (int k = 0; k < 10000; ++k) (void)ekf.step(f, Vec2{0.0, 0.0});
    const double s3_30k = ekf.misalignment_sigma3()[0];
    EXPECT_NEAR(s3_30k, s3_20k, 0.02 * s3_20k) << "steady state reached";
    EXPECT_GT(s3_30k, 1e-5) << "process noise must floor the covariance";
}

}  // namespace
