#include <gtest/gtest.h>

#include <cmath>

#include "math/rotation.hpp"
#include "sim/scenario.hpp"
#include "system/sabre_runner.hpp"
#include "video/affine.hpp"
#include "video/video_system.hpp"

// The complete Figure 3 loop: sensors -> Sabre firmware (softfloat FPU) ->
// memory-mapped control registers -> video affine correction. The video
// block reads the angles exactly where the FPGA fabric would: out of the
// ControlPeripheral the firmware writes, in Q16.16.

namespace {

using namespace ob;
using math::deg2rad;
using math::EulerAngles;
using math::rad2deg;

TEST(FullSystem, SabreControlRegistersDriveVideoCorrection) {
    // A camera misaligned in roll only (the affine rotation axis), so the
    // correction quality directly reflects the estimate quality. The
    // alignment runs on the tilt-sequence bench: on a *level* bench yaw is
    // unobservable and its wandering estimate would inject a bogus
    // horizontal shift into the video correction — the observability
    // lesson of §11.1 showing up as picture quality.
    const EulerAngles truth = EulerAngles::from_deg(4.0, 0.0, 0.0);
    const double focal = 120.0;

    // --- Fusion on the soft core.
    auto scfg = sim::ScenarioConfig::static_tilted(
        60.0, truth, EulerAngles::from_deg(12.0, 8.0, 0.0));
    scfg.acc_errors.bias_sigma = 0.0;
    scfg.imu_errors.accel_bias_sigma = 0.0;
    sim::Scenario sc(scfg, 2024);
    system::SabreFusionSystem fusion;
    while (auto s = sc.next()) fusion.push(s->dmu, s->adxl);
    (void)fusion.run_pending(4'000'000'000ull);

    // --- Video path wired to the control registers (not to any host-side
    // estimate object): exactly what the fabric sees.
    const auto& ctrl = fusion.control();
    video::VideoSystem vs({.width = 128, .height = 96, .focal_px = focal});
    vs.set_angle_provider([&ctrl] {
        using CR = sabre::ControlPeripheral;
        return EulerAngles{ctrl.angle(CR::kRoll), ctrl.angle(CR::kPitch),
                           ctrl.angle(CR::kYaw)};
    });

    const video::Frame scene = video::make_test_pattern(128, 96);
    const video::Frame camera =
        video::simulate_misaligned_camera(scene, truth, focal);
    const auto corrected = vs.process_frame(camera);

    const double before = camera.psnr_against(scene);
    const double after = corrected.display.psnr_against(scene);
    EXPECT_GT(after, before + 3.0)
        << "correction via Sabre control registers must improve PSNR "
        << "(before=" << before << " after=" << after << ")";

    // The angle that drove the correction came from the firmware and is
    // quantized Q16.16: confirm it matches the injected truth closely.
    EXPECT_NEAR(
        rad2deg(ctrl.angle(sabre::ControlPeripheral::kRoll)), 4.0, 0.15);
    // Status flag set, updates counted.
    EXPECT_EQ(ctrl.reg(sabre::ControlPeripheral::kStatus), 1u);
    EXPECT_GT(ctrl.reg(sabre::ControlPeripheral::kUpdateCount), 5000u);
}

TEST(FullSystem, Q16AngleQuantizationIsSubMillidegree) {
    // The control-register transport (Q16.16 radians) must not be the
    // accuracy bottleneck: one LSB is 2^-16 rad = 0.00087 deg.
    const double lsb_deg = rad2deg(1.0 / 65536.0);
    EXPECT_LT(lsb_deg, 0.001);
}

}  // namespace
