#include <gtest/gtest.h>

#include <algorithm>

#include "comm/bridge.hpp"
#include "comm/can.hpp"
#include "comm/codec.hpp"
#include "comm/uart.hpp"
#include "util/rng.hpp"

// System-level transport properties: ordering, conservation and integrity
// invariants that must hold for any traffic pattern and fault mix.

namespace {

using namespace ob::comm;
using ob::util::Rng;

class CanBusPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CanBusPropertyTest, AllFramesDeliveredExactlyOnce) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 31);
    CanBus bus(500000.0);
    std::vector<CanFrame> delivered;
    bus.on_delivery([&](const CanFrame& f, double) { delivered.push_back(f); });

    const int n = 200;
    for (int i = 0; i < n; ++i) {
        CanFrame f;
        f.id = static_cast<std::uint16_t>(rng.uniform_int(0, 0x7FF));
        f.dlc = static_cast<std::uint8_t>(rng.uniform_int(0, 8));
        f.data[0] = static_cast<std::uint8_t>(i);  // payload tag
        f.data[1] = static_cast<std::uint8_t>(i >> 8);
        bus.send(f, rng.uniform(0.0, 0.05));
    }
    bus.advance_to(10.0);
    EXPECT_EQ(delivered.size(), static_cast<std::size_t>(n));
    EXPECT_EQ(bus.pending(), 0u);
    // Every tag appears exactly once.
    std::vector<int> tags;
    for (const auto& f : delivered)
        tags.push_back(f.data[0] | (f.data[1] << 8));
    std::sort(tags.begin(), tags.end());
    for (int i = 0; i < n; ++i) EXPECT_EQ(tags[static_cast<std::size_t>(i)], i);
}

TEST_P(CanBusPropertyTest, DeliveryTimesAreMonotonicAndFeasible) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 97);
    CanBus bus(250000.0);
    std::vector<double> times;
    std::vector<std::size_t> bits;
    bus.on_delivery([&](const CanFrame& f, double t) {
        times.push_back(t);
        bits.push_back(can_wire_bits(f));
    });
    for (int i = 0; i < 100; ++i) {
        CanFrame f;
        f.id = static_cast<std::uint16_t>(rng.uniform_int(0, 0x7FF));
        f.dlc = 8;
        bus.send(f, rng.uniform(0.0, 0.01));
    }
    bus.advance_to(5.0);
    for (std::size_t i = 1; i < times.size(); ++i) {
        EXPECT_GE(times[i], times[i - 1]) << "bus is a serial medium";
        // Frames cannot overlap: successive end times differ by at least
        // one frame duration.
        EXPECT_GE(times[i] - times[i - 1],
                  static_cast<double>(bits[i]) / 250000.0 - 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanBusPropertyTest, ::testing::Range(0, 8));

class TransportFaultTest : public ::testing::TestWithParam<int> {};

TEST_P(TransportFaultTest, NoCorruptDmuSampleEverDecodes) {
    // Under heavy bit-flip injection, every sample that survives decoding
    // must be byte-identical to one that was sent (the checksum may only
    // pass for unmodified payloads) — integrity over availability.
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 555);
    UartFaults faults;
    faults.bit_flip_probability = 0.05;
    UartLink uart(115200.0, faults, static_cast<std::uint64_t>(GetParam()));
    CanSerialBridge bridge(uart);
    CanSerialDeframer deframer;
    DmuCodec codec;

    std::vector<DmuSample> sent;
    // 250 samples keep the one-byte sequence numbers unique, so sent[seq]
    // is the ground truth for any decoded sample.
    for (int i = 0; i < 250; ++i) {
        DmuSample s;
        s.seq = static_cast<std::uint8_t>(i);
        for (auto& g : s.gyro)
            g = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
        for (auto& a : s.accel)
            a = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
        sent.push_back(s);
        const auto [gf, af] = DmuCodec::encode(s);
        bridge.forward(gf, i * 0.01);
        bridge.forward(af, i * 0.01);
    }
    std::size_t decoded = 0;
    for (const auto& byte : uart.receive_until(100.0)) {
        if (auto f = deframer.feed(byte)) {
            if (auto s = codec.feed(*f, byte.t)) {
                ++decoded;
                // Must match the sent sample with the same seq.
                const auto& expect = sent[s->seq];
                EXPECT_EQ(*s, expect) << "corrupt sample passed the checksum";
            }
        }
    }
    // Some loss must have occurred (the faults are heavy) but not total.
    EXPECT_LT(decoded, sent.size());
    EXPECT_GT(decoded, sent.size() / 10);
}

TEST_P(TransportFaultTest, AdxlDecoderNeverAcceptsAlteredTimings) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 777);
    AdxlDeserializer dec;
    const AdxlConfig cfg;
    int accepted_bad = 0;
    for (int i = 0; i < 2000; ++i) {
        const auto t = adxl_encode(rng.uniform(-15, 15), rng.uniform(-15, 15),
                                   static_cast<std::uint8_t>(i), cfg);
        auto bytes = adxl_serialize(t);
        const bool corrupt = rng.chance(0.3);
        if (corrupt) {
            const auto idx =
                static_cast<std::size_t>(rng.uniform_int(1, 11));
            bytes[idx] ^= static_cast<std::uint8_t>(
                1u << rng.uniform_int(0, 7));
        }
        for (const auto b : bytes) {
            if (auto r = dec.feed(b, 0.0)) {
                if (corrupt && !(*r == t)) {
                    // A corrupted packet decoded as something else: it must
                    // at least fail the plausibility screen OR be an exact
                    // resync artifact; count blind acceptances of altered
                    // *timing* content.
                    if (adxl_plausible(*r, cfg)) ++accepted_bad;
                }
            }
        }
    }
    // The additive checksum plus the plausibility band makes silently
    // accepted corruption extremely rare.
    EXPECT_LE(accepted_bad, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportFaultTest, ::testing::Range(0, 6));

}  // namespace
