#include <gtest/gtest.h>

#include <cmath>

#include "sim/acc_model.hpp"
#include "sim/imu_model.hpp"
#include "sim/scenario.hpp"
#include "sim/trajectory.hpp"
#include "sim/vibration.hpp"
#include "util/stats.hpp"

namespace {

using namespace ob::sim;
using ob::math::deg2rad;
using ob::math::EulerAngles;
using ob::math::Vec3;
using ob::util::Rng;
using ob::util::RunningStats;

ImuErrorConfig perfect_imu() {
    ImuErrorConfig c;
    c.accel_bias_sigma = 0.0;
    c.accel_noise_sigma = 0.0;
    c.accel_scale_sigma = 0.0;
    c.accel_bias_walk = 0.0;
    c.gyro_bias_sigma = 0.0;
    c.gyro_noise_sigma = 0.0;
    c.gyro_scale_sigma = 0.0;
    c.internal_misalign_sigma = 0.0;
    return c;
}

AccErrorConfig perfect_acc() {
    AccErrorConfig c;
    c.bias_sigma = 0.0;
    c.noise_sigma = 0.0;
    c.scale_sigma = 0.0;
    c.cross_axis = 0.0;
    return c;
}

VibrationConfig no_vibration() {
    VibrationConfig v;
    v.engine_amp_idle = 0.0;
    v.engine_amp_per_mps = 0.0;
    v.road_amp_per_sqrt_mps = 0.0;
    v.gyro_amp_factor = 0.0;
    return v;
}

// --- Trajectory --------------------------------------------------------------

TEST(StaticProfile, LevelSpecificForceIsMinusG) {
    const StaticProfile p(EulerAngles{}, 10.0);
    const auto s = p.state_at(5.0);
    const Vec3 f = s.specific_force_body();
    EXPECT_NEAR(f[0], 0.0, 1e-12);
    EXPECT_NEAR(f[1], 0.0, 1e-12);
    EXPECT_NEAR(f[2], -kGravity, 1e-12);
    EXPECT_DOUBLE_EQ(s.speed, 0.0);
    EXPECT_NEAR(ob::math::norm(s.omega_body), 0.0, 1e-15);
}

TEST(StaticProfile, TiltedPlatformProjectsGravity) {
    const double theta = deg2rad(10.0);
    const StaticProfile p(EulerAngles{0.0, theta, 0.0}, 10.0);
    const Vec3 f = p.state_at(0.0).specific_force_body();
    EXPECT_NEAR(f[0], kGravity * std::sin(theta), 1e-12);
    EXPECT_NEAR(f[2], -kGravity * std::cos(theta), 1e-12);
}

TEST(VehicleState, ForwardAccelerationShowsOnBodyX) {
    VehicleState s;
    s.accel_nav = Vec3{2.5, 0.0, 0.0};
    s.attitude = EulerAngles{};  // facing north (x)
    const Vec3 f = s.specific_force_body();
    EXPECT_NEAR(f[0], 2.5, 1e-12);
    EXPECT_NEAR(f[2], -kGravity, 1e-12);
}

TEST(DriveProfile, CityDrivePhysicalSanity) {
    const auto p = DriveProfile::city(120.0, 7);
    EXPECT_GE(p.duration(), 120.0);
    EXPECT_GT(p.max_speed(), 3.0);
    EXPECT_LT(p.max_speed(), 30.0);
    for (double t = 0.0; t <= p.duration(); t += 0.25) {
        const auto s = p.state_at(t);
        EXPECT_GE(s.speed, 0.0);
        EXPECT_LT(std::abs(s.attitude.roll), deg2rad(6.0));
        EXPECT_LT(std::abs(s.attitude.pitch), deg2rad(6.0));
        EXPECT_NEAR(s.accel_nav[2], 0.0, 1e-12);  // planar motion
        EXPECT_TRUE(std::isfinite(ob::math::norm(s.omega_body)));
    }
}

TEST(DriveProfile, HighwayReachesCruisingSpeed) {
    const auto p = DriveProfile::highway(120.0, 3);
    EXPECT_GT(p.max_speed(), 20.0);
    EXPECT_LT(p.max_speed(), 45.0);
}

TEST(DriveProfile, StartsAtRest) {
    const auto p = DriveProfile::city(60.0, 1);
    EXPECT_NEAR(p.state_at(0.0).speed, 0.0, 1e-9);
}

TEST(DriveProfile, DeterministicForSeed) {
    const auto a = DriveProfile::city(60.0, 5);
    const auto b = DriveProfile::city(60.0, 5);
    for (double t = 0.0; t < 60.0; t += 1.0) {
        EXPECT_DOUBLE_EQ(a.state_at(t).speed, b.state_at(t).speed);
        EXPECT_DOUBLE_EQ(a.state_at(t).attitude.yaw, b.state_at(t).attitude.yaw);
    }
}

TEST(DriveProfile, FigureEightAlternatesTurns) {
    const auto p = DriveProfile::figure_eight(60.0);
    RunningStats yaw_rate;
    double min_wz = 0.0, max_wz = 0.0;
    for (double t = 10.0; t < 60.0; t += 0.1) {
        const double wz = p.state_at(t).omega_body[2];
        min_wz = std::min(min_wz, wz);
        max_wz = std::max(max_wz, wz);
    }
    EXPECT_GT(max_wz, 0.15);
    EXPECT_LT(min_wz, -0.15);
}

TEST(DriveProfile, RoadGradePitchesVehicle) {
    // A sustained 5% climb must settle the vehicle pitch near atan(0.05)
    // and put ~g*sin(pitch) on the body x accelerometer at cruise.
    std::vector<DriveSegment> segs;
    segs.push_back({8.0, 2.0, 0.0, 0.0});    // get moving on the flat
    segs.push_back({30.0, 0.0, 0.0, 0.05});  // long climb
    const DriveProfile p(std::move(segs), {}, "hill");
    const auto s = p.state_at(25.0);  // mid-climb, cruising
    EXPECT_NEAR(s.attitude.pitch, std::atan(0.05), 0.01);
    const auto f = s.specific_force_body();
    EXPECT_NEAR(f[0], kGravity * std::sin(s.attitude.pitch), 0.15);
}

TEST(DriveProfile, CityDriveIncludesGradeVariation) {
    const auto p = DriveProfile::city(180.0, 3);
    double min_pitch = 0.0, max_pitch = 0.0;
    for (double t = 0.0; t < p.duration(); t += 0.5) {
        const double pitch = p.state_at(t).attitude.pitch;
        min_pitch = std::min(min_pitch, pitch);
        max_pitch = std::max(max_pitch, pitch);
    }
    // Hills up to +-4% -> pitch excursions of a degree-plus each way.
    EXPECT_GT(max_pitch, deg2rad(0.8));
    EXPECT_LT(min_pitch, -deg2rad(0.8));
}

TEST(DriveProfile, CentripetalAccelerationInTurns) {
    // During a steady turn |a_nav| should be about v * yaw_rate.
    const auto p = DriveProfile::figure_eight(40.0);
    const auto s = p.state_at(12.0);  // mid-turn
    if (s.speed > 1.0 && std::abs(s.omega_body[2]) > 0.1) {
        const double a_lat_expected = s.speed * std::abs(s.omega_body[2]);
        const double a_mag = ob::math::norm(s.accel_nav);
        EXPECT_NEAR(a_mag, a_lat_expected, 0.5 + 0.2 * a_lat_expected);
    }
}

// --- Vibration ---------------------------------------------------------------

TEST(Vibration, GrowsWithSpeed) {
    const VibrationConfig cfg;
    VibrationModel still(cfg, Rng(1));
    VibrationModel moving(cfg, Rng(1));
    RunningStats s_still, s_moving;
    const double dt = 0.01;
    for (int i = 0; i < 20000; ++i) {
        const double t = i * dt;
        s_still.add(still.step_accel(t, dt, 0.0)[0]);
        s_moving.add(moving.step_accel(t, dt, 15.0)[0]);
    }
    EXPECT_GT(s_moving.stddev(), 2.0 * s_still.stddev());
}

TEST(Vibration, ZeroConfigIsSilent) {
    VibrationModel v(no_vibration(), Rng(2));
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(ob::math::norm(v.step_accel(i * 0.01, 0.01, 20.0)), 0.0);
        EXPECT_EQ(ob::math::norm(v.step_gyro(0.01, 20.0)), 0.0);
    }
}

TEST(Vibration, StaticLevelIsSmall) {
    // At standstill the paper could use R as low as 0.003 m/s^2; engine
    // idle vibration must stay in that ballpark.
    VibrationModel v(VibrationConfig{}, Rng(3));
    RunningStats s;
    for (int i = 0; i < 20000; ++i) s.add(v.step_accel(i * 0.01, 0.01, 0.0)[0]);
    EXPECT_LT(s.stddev(), 0.01);
}

// --- IMU model ---------------------------------------------------------------

TEST(ImuModel, PerfectSensorMatchesTruthWithinQuantization) {
    ImuModel imu(perfect_imu(), no_vibration(), Rng(1));
    const Vec3 f{1.5, -0.5, -9.5};
    const Vec3 w{0.1, -0.2, 0.3};
    const auto s = imu.sample(f, w, 0.0, 0.01, 0.0);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(imu.scale().raw_to_accel(s.accel[i]), f[i],
                    imu.scale().accel_lsb_mps2);
        EXPECT_NEAR(imu.scale().raw_to_rate(s.gyro[i]), w[i],
                    imu.scale().gyro_lsb_rad_s);
    }
}

TEST(ImuModel, SequenceNumbersIncrement) {
    ImuModel imu(perfect_imu(), no_vibration(), Rng(1));
    const Vec3 z{};
    EXPECT_EQ(imu.sample(z, z, 0.0, 0.01, 0.0).seq, 0);
    EXPECT_EQ(imu.sample(z, z, 0.01, 0.01, 0.0).seq, 1);
    EXPECT_EQ(imu.sample(z, z, 0.02, 0.01, 0.0).seq, 2);
}

TEST(ImuModel, BiasDrawnWithinConfiguredMagnitude) {
    // Across many instantiations the bias spread matches the config sigma.
    ImuErrorConfig cfg = perfect_imu();
    cfg.accel_bias_sigma = 0.02;
    RunningStats biases;
    for (std::uint64_t seed = 0; seed < 300; ++seed) {
        ImuModel imu(cfg, no_vibration(), Rng(seed));
        biases.add(imu.accel_bias()[0]);
    }
    EXPECT_NEAR(biases.stddev(), 0.02, 0.004);
    EXPECT_NEAR(biases.mean(), 0.0, 0.004);
}

TEST(ImuModel, NoiseShowsInSampleSpread) {
    ImuErrorConfig cfg = perfect_imu();
    cfg.accel_noise_sigma = 0.05;
    ImuModel imu(cfg, no_vibration(), Rng(4));
    RunningStats s;
    const Vec3 f{0.0, 0.0, -9.80665};
    for (int i = 0; i < 5000; ++i) {
        const auto smp = imu.sample(f, Vec3{}, i * 0.01, 0.01, 0.0);
        s.add(imu.scale().raw_to_accel(smp.accel[0]));
    }
    EXPECT_NEAR(s.stddev(), 0.05, 0.01);
}

// --- ACC model ---------------------------------------------------------------

TEST(AccModel, MisalignmentRotatesGravity) {
    const double pitch = deg2rad(3.0);
    AccModel acc(EulerAngles{0.0, pitch, 0.0}, perfect_acc(), no_vibration(),
                 Rng(1));
    const Vec3 f{0.0, 0.0, -kGravity};  // static, level vehicle
    const auto timing = acc.sample(f, 0.0, 0.01, 0.0);
    const auto [ax, ay] = adxl_decode(timing, acc.adxl_config());
    EXPECT_NEAR(ax, kGravity * std::sin(pitch), 2e-3);
    EXPECT_NEAR(ay, 0.0, 2e-3);
}

TEST(AccModel, RollMisalignmentShowsOnY) {
    const double roll = deg2rad(2.0);
    AccModel acc(EulerAngles{roll, 0.0, 0.0}, perfect_acc(), no_vibration(),
                 Rng(1));
    const Vec3 f{0.0, 0.0, -kGravity};
    const auto [ax, ay] = adxl_decode(acc.sample(f, 0.0, 0.01, 0.0),
                                      acc.adxl_config());
    EXPECT_NEAR(ax, 0.0, 2e-3);
    EXPECT_NEAR(ay, -kGravity * std::sin(roll), 2e-3);
}

TEST(AccModel, YawMisalignmentInvisibleAtLevelRest) {
    AccModel acc(EulerAngles{0.0, 0.0, deg2rad(5.0)}, perfect_acc(),
                 no_vibration(), Rng(1));
    const Vec3 f{0.0, 0.0, -kGravity};
    const auto [ax, ay] = adxl_decode(acc.sample(f, 0.0, 0.01, 0.0),
                                      acc.adxl_config());
    // Gravity along z is invariant under z-rotation: yaw unobservable.
    EXPECT_NEAR(ax, 0.0, 2e-3);
    EXPECT_NEAR(ay, 0.0, 2e-3);
}

TEST(AccModel, BumpShiftsTrueMisalignment) {
    AccModel acc(EulerAngles{}, perfect_acc(), no_vibration(), Rng(1));
    acc.bump(EulerAngles::from_deg(0.0, 1.0, 0.0));
    EXPECT_NEAR(acc.true_misalignment().pitch, deg2rad(1.0), 1e-12);
    const Vec3 f{0.0, 0.0, -kGravity};
    const auto [ax, ay] = adxl_decode(acc.sample(f, 0.0, 0.01, 0.0),
                                      acc.adxl_config());
    (void)ay;
    EXPECT_NEAR(ax, kGravity * std::sin(deg2rad(1.0)), 2e-3);
}

// --- Scenario ----------------------------------------------------------------

TEST(Scenario, StepCountMatchesDurationAndRate) {
    auto cfg = ScenarioConfig::static_level(10.0, EulerAngles{});
    Scenario sc(cfg, 1);
    std::size_t n = 0;
    while (sc.next()) ++n;
    EXPECT_EQ(n, 1001u);  // t = 0..10 inclusive at 100 Hz
}

TEST(Scenario, DeterministicForSeed) {
    auto cfg = ScenarioConfig::dynamic_city(20.0, EulerAngles::from_deg(1, 2, 3),
                                            11);
    Scenario a(cfg, 42);
    Scenario b(cfg, 42);
    for (int i = 0; i < 500; ++i) {
        const auto sa = a.next();
        const auto sb = b.next();
        ASSERT_TRUE(sa && sb);
        EXPECT_EQ(sa->dmu, sb->dmu);
        EXPECT_EQ(sa->adxl, sb->adxl);
    }
}

TEST(Scenario, TruthTracksProfile) {
    // static_tilted cycles poses: level first, then the requested tilt.
    auto cfg = ScenarioConfig::static_tilted(40.0, EulerAngles{},
                                             EulerAngles::from_deg(0, 10, 0));
    Scenario sc(cfg, 1);
    const auto s = sc.next();
    ASSERT_TRUE(s);
    EXPECT_NEAR(s->f_body_true[0], 0.0, 1e-9);  // pose 0 is level
    // Pose 1 (t in [10,20)) carries the tilt.
    const auto mid = cfg.profile->state_at(15.0);
    EXPECT_NEAR(mid.specific_force_body()[0],
                kGravity * std::sin(deg2rad(10.0)), 1e-9);
}

TEST(TiltSequence, CyclesPosesAndValidates) {
    using Pose = TiltSequenceProfile::Pose;
    const TiltSequenceProfile p(
        {Pose{EulerAngles{}, 5.0}, Pose{EulerAngles::from_deg(10, 0, 0), 5.0}},
        30.0);
    EXPECT_NEAR(p.state_at(2.0).attitude.roll, 0.0, 1e-15);
    EXPECT_NEAR(p.state_at(7.0).attitude.roll, deg2rad(10.0), 1e-12);
    EXPECT_NEAR(p.state_at(12.0).attitude.roll, 0.0, 1e-15);  // cycle wraps
    EXPECT_THROW(TiltSequenceProfile({}, 10.0), std::invalid_argument);
    EXPECT_THROW(TiltSequenceProfile({Pose{EulerAngles{}, 0.0}}, 10.0),
                 std::invalid_argument);
}

TEST(Scenario, BumpChangesTruth) {
    auto cfg = ScenarioConfig::static_level(5.0, EulerAngles{});
    Scenario sc(cfg, 1);
    EXPECT_NEAR(sc.true_misalignment().pitch, 0.0, 1e-15);
    sc.bump(EulerAngles::from_deg(0.0, 2.0, 0.0));
    EXPECT_NEAR(sc.true_misalignment().pitch, deg2rad(2.0), 1e-12);
}

TEST(Scenario, RejectsBadConfig) {
    ScenarioConfig cfg;  // null profile
    EXPECT_THROW(Scenario(cfg, 1), std::invalid_argument);
    cfg = ScenarioConfig::static_level(1.0, EulerAngles{});
    cfg.sample_rate_hz = 0.0;
    EXPECT_THROW(Scenario(cfg, 1), std::invalid_argument);
}

}  // namespace
