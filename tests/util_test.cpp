#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time_series.hpp"

namespace {

using namespace ob::util;

TEST(RunningStats, KnownValues) {
    RunningStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
    const RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.rms(), 0.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
    RunningStats s;
    s.add(3.25);
    EXPECT_DOUBLE_EQ(s.mean(), 3.25);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
    Rng rng(42);
    RunningStats all;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.gaussian(3.0, -1.0);
        all.add(x);
        (i % 2 == 0 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, RmsOfConstant) {
    RunningStats s;
    for (int i = 0; i < 10; ++i) s.add(-2.0);
    EXPECT_DOUBLE_EQ(s.rms(), 2.0);
}

TEST(SampleSet, PercentilesExact) {
    SampleSet s;
    for (int i = 100; i >= 1; --i) s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.median(), 50.5);
    EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
}

TEST(SampleSet, ThrowsOnEmpty) {
    const SampleSet s;
    EXPECT_THROW((void)s.percentile(50), std::domain_error);
}

TEST(SampleSet, AddAfterQueryKeepsConsistency) {
    SampleSet s;
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.median(), 1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(Histogram, BinningAndClamping) {
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);    // bin 0
    h.add(9.99);   // bin 9
    h.add(-5.0);   // clamped to bin 0
    h.add(42.0);   // clamped to bin 9
    EXPECT_EQ(h.bin_count(0), 2u);
    EXPECT_EQ(h.bin_count(9), 2u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bin_high(9), 10.0);
}

TEST(Histogram, RejectsBadRange) {
    EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Rng, DeterministicForSameSeed) {
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.gaussian(), b.gaussian());
    }
}

TEST(Rng, ForkedStreamsAreIndependent) {
    Rng parent(7);
    Rng child = parent.fork();
    // Child draws must not change parent's sequence relative to a twin.
    Rng twin(7);
    (void)twin.fork();
    for (int i = 0; i < 10; ++i) (void)child.gaussian();
    EXPECT_DOUBLE_EQ(parent.uniform(), twin.uniform());
}

TEST(Rng, UniformIntBounds) {
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, GaussianMoments) {
    Rng rng(99);
    RunningStats s;
    for (int i = 0; i < 50000; ++i) s.add(rng.gaussian(2.0, 5.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Csv, EscapeRules) {
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesHeaderAndRows) {
    const std::string path = ::testing::TempDir() + "/ob_csv_test.csv";
    {
        CsvWriter w(path, {"t", "x"});
        w.row({0.0, 1.5});
        w.row({1.0, -2.5});
        EXPECT_EQ(w.rows(), 2u);
    }
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "t,x");
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "0,1.5");
    std::remove(path.c_str());
}

TEST(Csv, RowWidthMismatchThrows) {
    const std::string path = ::testing::TempDir() + "/ob_csv_test2.csv";
    CsvWriter w(path, {"a", "b"});
    EXPECT_THROW(w.row({1.0}), std::invalid_argument);
    std::remove(path.c_str());
}

TEST(TimeSeries, SampleInterpolates) {
    TimeSeries ts;
    ts.push(0.0, 0.0);
    ts.push(1.0, 10.0);
    ts.push(2.0, 30.0);
    EXPECT_DOUBLE_EQ(ts.sample(0.5), 5.0);
    EXPECT_DOUBLE_EQ(ts.sample(1.5), 20.0);
    EXPECT_DOUBLE_EQ(ts.sample(-1.0), 0.0);   // clamped
    EXPECT_DOUBLE_EQ(ts.sample(99.0), 30.0);  // clamped
}

TEST(TimeSeries, RejectsNonMonotonicTime) {
    TimeSeries ts;
    ts.push(1.0, 0.0);
    EXPECT_THROW(ts.push(0.5, 0.0), std::invalid_argument);
}

TEST(TimeSeries, WindowSelectsInclusive) {
    TimeSeries ts;
    for (int i = 0; i < 10; ++i) ts.push(i, i * i);
    const TimeSeries w = ts.window(2.0, 5.0);
    ASSERT_EQ(w.size(), 4u);
    EXPECT_DOUBLE_EQ(w.time(0), 2.0);
    EXPECT_DOUBLE_EQ(w.value(3), 25.0);
}

TEST(AsciiPlot, RendersSeriesGlyphs) {
    std::vector<double> ys(200);
    for (std::size_t i = 0; i < ys.size(); ++i)
        ys[i] = std::sin(0.1 * static_cast<double>(i));
    AsciiPlot plot(80, 20);
    plot.set_title("sine");
    plot.add_series("wave", ys, '*');
    const std::string out = plot.render();
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find("sine"), std::string::npos);
    EXPECT_NE(out.find("[*] wave"), std::string::npos);
}

TEST(AsciiPlot, FlatSeriesDoesNotCrash) {
    const std::vector<double> ys(50, 3.0);
    AsciiPlot plot(40, 10);
    plot.add_series("flat", ys, '#');
    EXPECT_FALSE(plot.render().empty());
}

TEST(AsciiPlot, FixedRangeClipsOutliers) {
    std::vector<double> ys = {0.0, 100.0, 0.5, 0.7};
    AsciiPlot plot(40, 10);
    plot.set_y_range(0.0, 1.0);
    plot.add_series("clipped", ys, 'x');
    EXPECT_FALSE(plot.render().empty());
}

}  // namespace
