#include <gtest/gtest.h>

#include <cmath>

#include "core/boresight_ekf.hpp"
#include "core/fixed_ekf.hpp"
#include "util/rng.hpp"

namespace {

using namespace ob::core;
using ob::math::deg2rad;
using ob::math::dcm_from_euler;
using ob::math::EulerAngles;
using ob::math::rad2deg;
using ob::math::Vec2;
using ob::math::Vec3;
using ob::util::Rng;

constexpr double kG = 9.80665;
using FQ = FixedBoresightEkf;

Vec2 ideal_acc(const EulerAngles& mis, const Vec3& f_body) {
    const Vec3 f_s = dcm_from_euler(mis) * f_body;
    return Vec2{f_s[0], f_s[1]};
}

Vec3 rich_excitation(int k) {
    const double phase = 0.013 * k;
    return Vec3{2.0 * std::sin(phase), 1.5 * std::cos(1.7 * phase), -kG};
}

// --- Q32.32 primitives ---------------------------------------------------------

TEST(FixedPointQ32, ConversionRoundTrip) {
    for (const double v : {0.0, 1.0, -1.0, 9.80665, -0.0075, 12345.6789}) {
        EXPECT_NEAR(FQ::from_q(FQ::to_q(v)), v, 1.5 / 4294967296.0) << v;
    }
    EXPECT_THROW((void)FQ::to_q(3e9), std::overflow_error);
}

TEST(FixedPointQ32, MultiplyAccuracy) {
    Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
        const double a = rng.uniform(-100.0, 100.0);
        const double b = rng.uniform(-100.0, 100.0);
        const double got = FQ::from_q(FQ::qmul(FQ::to_q(a), FQ::to_q(b)));
        // Operand quantization scales by the other operand.
        const double bound = (std::abs(a) + std::abs(b) + 2.0) / 4294967296.0;
        EXPECT_NEAR(got, a * b, bound);
    }
}

TEST(FixedPointQ32, DivideAccuracy) {
    Rng rng(2);
    for (int i = 0; i < 5000; ++i) {
        const double a = rng.uniform(-100.0, 100.0);
        const double b = rng.uniform(0.1, 50.0) * (rng.chance(0.5) ? 1 : -1);
        const double got = FQ::from_q(FQ::qdiv(FQ::to_q(a), FQ::to_q(b)));
        const double bound =
            (std::abs(a / b) + std::abs(1.0 / b) + 2.0) / 4294967296.0 * 4.0;
        EXPECT_NEAR(got, a / b, bound);
    }
    EXPECT_THROW((void)FQ::qdiv(FQ::to_q(1.0), 0), std::domain_error);
}

// --- Filter behaviour ------------------------------------------------------------

TEST(FixedEkf, ConvergesToTruthNoiseFree) {
    const EulerAngles truth = EulerAngles::from_deg(1.0, -1.5, 0.8);
    FixedBoresightEkf ekf;
    for (int k = 0; k < 4000; ++k) {
        const Vec3 f = rich_excitation(k);
        (void)ekf.step(f, ideal_acc(truth, f));
    }
    const EulerAngles est = ekf.misalignment();
    // The small-angle fixed model vs exact-DCM truth: degree-squared
    // model error dominates the Q32.32 quantization.
    EXPECT_NEAR(rad2deg(est.roll), 1.0, 0.05);
    EXPECT_NEAR(rad2deg(est.pitch), -1.5, 0.05);
    EXPECT_NEAR(rad2deg(est.yaw), 0.8, 0.05);
}

TEST(FixedEkf, MatchesDoubleFilterUnderNoise) {
    const EulerAngles truth = EulerAngles::from_deg(0.8, -0.5, 0.4);
    FixedBoresightEkf::Config fcfg;
    fcfg.meas_noise_mps2 = 0.01;
    FixedBoresightEkf fixed(fcfg);

    BoresightConfig dcfg;
    dcfg.meas_noise_mps2 = 0.01;
    BoresightEkf dbl(dcfg);

    Rng rng(3);
    for (int k = 0; k < 8000; ++k) {
        const Vec3 f = rich_excitation(k);
        const Vec2 z = ideal_acc(truth, f) +
                       Vec2{rng.gaussian(0.01), rng.gaussian(0.01)};
        (void)fixed.step(f, z);
        (void)dbl.step(f, z);
    }
    const EulerAngles fe = fixed.misalignment();
    const EulerAngles de = dbl.misalignment();
    EXPECT_NEAR(rad2deg(fe.roll), rad2deg(de.roll), 0.03);
    EXPECT_NEAR(rad2deg(fe.pitch), rad2deg(de.pitch), 0.03);
    EXPECT_NEAR(rad2deg(fe.yaw), rad2deg(de.yaw), 0.05);
}

TEST(FixedEkf, CovarianceStaysPositiveAndShrinks) {
    FixedBoresightEkf ekf;
    const Vec3 f{0.0, 0.0, -kG};
    const auto s3_start = ekf.misalignment_sigma3();
    for (int k = 0; k < 3000; ++k)
        (void)ekf.step(f, ideal_acc(EulerAngles::from_deg(1, 1, 0), f));
    const auto s3 = ekf.misalignment_sigma3();
    for (std::size_t i = 0; i < 3; ++i) {
        const int ii = static_cast<int>(i);
        EXPECT_GE(ekf.covariance_raw(ii, ii), 1);
        EXPECT_LE(s3[i], s3_start[i] * 1.0001);
    }
    // Observable axes collapse by orders of magnitude.
    EXPECT_LT(s3[0], 0.02 * s3_start[0]);
    EXPECT_LT(s3[1], 0.02 * s3_start[1]);
}

TEST(FixedEkf, QuantizationFloorBoundsSigma) {
    // Run far past convergence: the reported variance can never go below
    // one Q32.32 LSB (the documented conversion finding).
    FixedBoresightEkf ekf;
    const Vec3 f{0.0, 0.0, -kG};
    for (int k = 0; k < 20000; ++k) (void)ekf.step(f, Vec2{0.0, 0.0});
    const double lsb_sigma3 = 3.0 * std::sqrt(1.0 / 4294967296.0);
    EXPECT_GE(ekf.misalignment_sigma3()[0], lsb_sigma3 * 0.99);
}

TEST(FixedEkf, ResidualReportingMatchesInputScale) {
    FixedBoresightEkf ekf;
    const Vec3 f{0.0, 0.0, -kG};
    // First update: residual equals z - f_xy at the zero-state prediction.
    const auto up = ekf.step(f, Vec2{0.1, -0.2});
    EXPECT_NEAR(up.residual[0], 0.1, 1e-6);
    EXPECT_NEAR(up.residual[1], -0.2, 1e-6);
    EXPECT_GT(up.sigma3[0], 0.0);
}

}  // namespace
