#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "math/matrix.hpp"
#include "math/rotation.hpp"
#include "util/rng.hpp"

// Randomized property tests for the math layer: rotation representation
// round-trips (Euler <-> DCM <-> quaternion), group structure (orthonormality
// under composition, inverse = transpose), and matrix algebra identities.
// Seeded draws make every case a deterministic regression; the EKF Jacobians
// and the video affine path both sit directly on these invariants.

namespace {

using namespace ob;
using math::EulerAngles;
using math::Mat3;
using math::Quaternion;
using math::Vec3;

EulerAngles random_euler(util::Rng& rng, double pitch_limit_deg = 85.0) {
    // Keep pitch away from the +-90 deg gimbal-lock singularity where the
    // Euler round-trip is legitimately non-unique.
    return EulerAngles{rng.uniform(-math::kPi, math::kPi),
                       math::deg2rad(rng.uniform(-pitch_limit_deg,
                                                 pitch_limit_deg)),
                       rng.uniform(-math::kPi, math::kPi)};
}

void expect_orthonormal(const Mat3& c, double tol) {
    const Mat3 should_be_i = c * c.transposed();
    EXPECT_LT((should_be_i - Mat3::identity()).max_abs(), tol);
    EXPECT_NEAR(math::determinant(c), 1.0, tol);
}

TEST(RotationProperty, EulerDcmRoundTrip) {
    util::Rng rng(0xE01);
    for (int i = 0; i < 1000; ++i) {
        const auto e = random_euler(rng);
        const auto back = math::euler_from_dcm(math::dcm_from_euler(e));
        EXPECT_NEAR(back.roll, e.roll, 1e-9) << "iter " << i;
        EXPECT_NEAR(back.pitch, e.pitch, 1e-9) << "iter " << i;
        EXPECT_NEAR(back.yaw, e.yaw, 1e-9) << "iter " << i;
    }
}

TEST(RotationProperty, DcmIsOrthonormalAndComposes) {
    util::Rng rng(0xE02);
    for (int i = 0; i < 500; ++i) {
        const Mat3 a = math::dcm_from_euler(random_euler(rng));
        const Mat3 b = math::dcm_from_euler(random_euler(rng));
        expect_orthonormal(a, 1e-12);
        expect_orthonormal(a * b, 1e-11);  // closed under composition
        // Inverse of a rotation is its transpose.
        EXPECT_LT((math::inverse(a) - a.transposed()).max_abs(), 1e-12);
    }
}

TEST(RotationProperty, QuaternionDcmRoundTrip) {
    util::Rng rng(0xE03);
    for (int i = 0; i < 1000; ++i) {
        const auto e = random_euler(rng);
        const Mat3 c = math::dcm_from_euler(e);
        const auto q = Quaternion::from_dcm(c);
        EXPECT_NEAR(q.norm(), 1.0, 1e-12);
        EXPECT_LT((q.to_dcm() - c).max_abs(), 1e-9) << "iter " << i;
        // from_euler must agree with the DCM path.
        const auto qe = Quaternion::from_euler(e);
        EXPECT_LT((qe.to_dcm() - c).max_abs(), 1e-9) << "iter " << i;
    }
}

TEST(RotationProperty, QuaternionCompositionMatchesDcmProduct) {
    // Documented convention: to_dcm(a*b) == to_dcm(b) * to_dcm(a).
    util::Rng rng(0xE04);
    for (int i = 0; i < 500; ++i) {
        const auto qa = Quaternion::from_euler(random_euler(rng));
        const auto qb = Quaternion::from_euler(random_euler(rng));
        EXPECT_LT(((qa * qb).to_dcm() - qb.to_dcm() * qa.to_dcm()).max_abs(),
                  1e-12)
            << "iter " << i;
        // Conjugate is the inverse rotation.
        EXPECT_NEAR((qa * qa.conjugate()).w(), 1.0, 1e-12);
        EXPECT_NEAR(qa.angle_to(qa), 0.0, 1e-9);
    }
}

TEST(RotationProperty, TransformPreservesLengthAndAngles) {
    util::Rng rng(0xE05);
    for (int i = 0; i < 500; ++i) {
        const auto q = Quaternion::from_euler(random_euler(rng));
        const Vec3 u{rng.uniform(-10, 10), rng.uniform(-10, 10),
                     rng.uniform(-10, 10)};
        const Vec3 v{rng.uniform(-10, 10), rng.uniform(-10, 10),
                     rng.uniform(-10, 10)};
        const Vec3 tu = q.transform(u), tv = q.transform(v);
        EXPECT_NEAR(math::norm(tu), math::norm(u), 1e-9);
        EXPECT_NEAR(math::dot(tu, tv), math::dot(u, v), 1e-8);
        // Rotations preserve orientation: cross products map through.
        const Vec3 txu = q.transform(math::cross(u, v));
        const Vec3 direct = math::cross(tu, tv);
        EXPECT_LT(math::norm(txu - direct), 1e-7);
    }
}

TEST(RotationProperty, SmallAngleDcmMatchesExactToFirstOrder) {
    util::Rng rng(0xE06);
    for (int i = 0; i < 200; ++i) {
        const double mag = rng.uniform(1e-6, 1e-3);
        const Vec3 rho = mag * math::normalized(Vec3{rng.uniform(-1, 1),
                                                     rng.uniform(-1, 1),
                                                     rng.uniform(-1, 1)});
        const Mat3 approx = math::small_angle_dcm(rho);
        const Mat3 exact = math::dcm_from_euler(
            Quaternion::from_axis_angle(rho, math::norm(rho)).to_euler());
        // First-order model: error is O(|rho|^2).
        EXPECT_LT((approx - exact).max_abs(), 10.0 * mag * mag) << "iter " << i;
    }
}

TEST(RotationProperty, WrapAngleIsIdempotentAndBounded) {
    util::Rng rng(0xE07);
    for (int i = 0; i < 1000; ++i) {
        const double a = rng.uniform(-50.0, 50.0);
        const double w = math::wrap_angle(a);
        EXPECT_GT(w, -math::kPi - 1e-12);
        EXPECT_LE(w, math::kPi + 1e-12);
        EXPECT_NEAR(math::wrap_angle(w), w, 1e-12);
        // Same point on the circle.
        EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9);
        EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9);
    }
}

TEST(MatrixProperty, InverseAndDeterminantIdentities) {
    util::Rng rng(0xE08);
    int tested = 0;
    for (int i = 0; i < 500; ++i) {
        Mat3 m;
        for (std::size_t r = 0; r < 3; ++r)
            for (std::size_t c = 0; c < 3; ++c)
                m(r, c) = rng.uniform(-5.0, 5.0);
        const double det = math::determinant(m);
        if (std::abs(det) < 0.1) continue;  // skip ill-conditioned draws
        ++tested;
        const Mat3 inv = math::inverse(m);
        EXPECT_LT((m * inv - Mat3::identity()).max_abs(), 1e-9) << "iter " << i;
        EXPECT_LT((inv * m - Mat3::identity()).max_abs(), 1e-9) << "iter " << i;
        EXPECT_NEAR(math::determinant(inv), 1.0 / det,
                    1e-6 * std::abs(1.0 / det));
        // det(A^T) == det(A).
        EXPECT_NEAR(math::determinant(m.transposed()), det,
                    1e-9 * std::abs(det));
    }
    EXPECT_GT(tested, 400);
}

TEST(MatrixProperty, SkewEncodesCrossProduct) {
    util::Rng rng(0xE09);
    for (int i = 0; i < 500; ++i) {
        const Vec3 a{rng.uniform(-3, 3), rng.uniform(-3, 3),
                     rng.uniform(-3, 3)};
        const Vec3 b{rng.uniform(-3, 3), rng.uniform(-3, 3),
                     rng.uniform(-3, 3)};
        EXPECT_LT(math::norm(Vec3{math::skew(a) * b} - math::cross(a, b)),
                  1e-12);
        // skew is antisymmetric with zero trace.
        EXPECT_LT((math::skew(a) + math::skew(a).transposed()).max_abs(),
                  1e-15);
        EXPECT_EQ(math::skew(a).trace(), 0.0);
    }
}

TEST(MatrixProperty, SymmetrizedAndOuterIdentities) {
    util::Rng rng(0xE0A);
    for (int i = 0; i < 200; ++i) {
        Mat3 m;
        for (std::size_t r = 0; r < 3; ++r)
            for (std::size_t c = 0; c < 3; ++c)
                m(r, c) = rng.uniform(-5.0, 5.0);
        const Mat3 s = m.symmetrized();
        EXPECT_LT((s - s.transposed()).max_abs(), 1e-15);
        EXPECT_NEAR(s.trace(), m.trace(), 1e-12);

        const Vec3 a{rng.uniform(-3, 3), rng.uniform(-3, 3),
                     rng.uniform(-3, 3)};
        const Vec3 b{rng.uniform(-3, 3), rng.uniform(-3, 3),
                     rng.uniform(-3, 3)};
        // outer(a,b) * x == a * dot(b,x)
        const Vec3 x{rng.uniform(-3, 3), rng.uniform(-3, 3),
                     rng.uniform(-3, 3)};
        const Vec3 lhs = math::outer(a, b) * x;
        const Vec3 rhs = math::dot(b, x) * a;
        EXPECT_LT(math::norm(lhs - rhs), 1e-12);
    }
}

}  // namespace
