// Differential pin of the batched ensemble Realize path: every lane of the
// SoA ensemble (EnsembleRealizer sampling, EnsembleEkf fusion, the fleet's
// batched seed runner) must be BITWISE identical to the scalar
// Scenario/BoresightEkf/run_fleet_seed path for the same seed index —
// serial and threaded, across seed counts that exercise single-lane units,
// small batches, the bench shape, and a unit split past kMaxBatchLanes.
// The comparison is over the canonical shard byte encoding, so every
// result field (trace summary, full final status, calibration outputs)
// participates; nothing is "close enough".

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/boresight_ekf.hpp"
#include "core/ensemble_ekf.hpp"
#include "sim/ensemble_realizer.hpp"
#include "sim/scenario.hpp"
#include "sim/scenario_library.hpp"
#include "sim/scenario_trace.hpp"
#include "system/fleet.hpp"
#include "system/fleet_shard.hpp"
#include "util/wire.hpp"

namespace {

using namespace ob;

[[nodiscard]] std::vector<std::uint8_t> seed_bytes(
    const system::FleetSeedResult& s) {
    util::ByteWriter w;
    system::encode_seed_result(w, s);
    return w.data();
}

// --- Layer 1: the SoA realizer against N independent Scenarios. -----------

TEST(EnsembleRealizer, EveryLaneMatchesItsScalarScenarioBitwise) {
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    const std::uint64_t stream = sim::scenario_seed(spec.name, 99);
    const auto trace = sim::ScenarioTrace::build(
        spec.build(15.0, spec.misalignment, stream), stream);

    const std::vector<std::uint64_t> seeds{stream, stream ^ 1, 0,
                                           0xDEADBEEFCAFEull};
    sim::EnsembleRealizer ens(trace, spec.misalignment, seeds);
    ASSERT_EQ(ens.lanes(), seeds.size());

    std::vector<sim::Scenario> scalar;
    scalar.reserve(seeds.size());
    for (const auto s : seeds) {
        scalar.emplace_back(trace, spec.misalignment, s);
    }

    // Bump every path mid-run so the disturbance arithmetic is covered too.
    const std::size_t bump_epoch = trace->epochs() / 2;
    const auto delta = math::EulerAngles::from_deg(0.4, -0.2, 0.1);

    double t = 0.0;
    std::size_t epoch = 0;
    double ts = 0.0;
    comm::DmuSample dmu;
    comm::AdxlTiming adxl;
    while (true) {
        if (epoch == bump_epoch) {
            ens.bump(delta);
            for (auto& sc : scalar) sc.bump(delta);
        }
        if (!ens.step(t)) break;
        for (std::size_t l = 0; l < seeds.size(); ++l) {
            ASSERT_TRUE(scalar[l].next_wire(ts, dmu, adxl));
            EXPECT_EQ(ts, t);
            ASSERT_EQ(ens.dmu()[l], dmu) << "lane " << l << " epoch " << epoch;
            ASSERT_EQ(ens.adxl()[l], adxl)
                << "lane " << l << " epoch " << epoch;
        }
        ++epoch;
    }
    EXPECT_EQ(epoch, trace->epochs());
    EXPECT_FALSE(scalar.front().next_wire(ts, dmu, adxl));

    const auto truth = ens.true_misalignment();
    const auto truth_scalar = scalar.front().true_misalignment();
    EXPECT_EQ(truth.roll, truth_scalar.roll);
    EXPECT_EQ(truth.pitch, truth_scalar.pitch);
    EXPECT_EQ(truth.yaw, truth_scalar.yaw);
}

// --- Layer 2: the lane-array EKF against N independent filters. -----------

TEST(EnsembleEkf, LanesMatchIndependentFiltersBitwise) {
    core::BoresightConfig cfg;
    cfg.meas_noise_mps2 = 0.01;
    constexpr std::size_t kLanes = 5;
    core::EnsembleEkf ens(cfg, kLanes);
    std::vector<core::BoresightEkf> scalar(kLanes, core::BoresightEkf(cfg));

    // Deterministic lane-distinct measurement streams (no RNG needed).
    for (std::size_t k = 0; k < 400; ++k) {
        math::Vec3 f_body[kLanes];
        math::Vec2 z[kLanes];
        core::BoresightEkf::Update up[kLanes];
        for (std::size_t l = 0; l < kLanes; ++l) {
            const double a = 0.1 * static_cast<double>(k % 17) -
                             0.03 * static_cast<double>(l);
            f_body[l] = math::Vec3{a, 0.2 - a, 9.8};
            z[l] = math::Vec2{a + 0.01 * static_cast<double>(l), 0.2 - a};
        }
        ens.step_all(f_body, z, up);
        for (std::size_t l = 0; l < kLanes; ++l) {
            const auto ref = scalar[l].step(f_body[l], z[l]);
            EXPECT_EQ(up[l].residual[0], ref.residual[0]);
            EXPECT_EQ(up[l].residual[1], ref.residual[1]);
            EXPECT_EQ(up[l].sigma3[0], ref.sigma3[0]);
            EXPECT_EQ(up[l].sigma3[1], ref.sigma3[1]);
        }
        if (k == 200) {
            ens.grow_angle_covariance(2, 1e-6);
            scalar[2].grow_angle_covariance(1e-6);
            ens.set_measurement_noise(3, 0.02);
            scalar[3].set_measurement_noise(0.02);
        }
    }
    for (std::size_t l = 0; l < kLanes; ++l) {
        const auto a = ens.misalignment(l);
        const auto b = scalar[l].misalignment();
        EXPECT_EQ(a.roll, b.roll);
        EXPECT_EQ(a.pitch, b.pitch);
        EXPECT_EQ(a.yaw, b.yaw);
        const auto s3a = ens.misalignment_sigma3(l);
        const auto s3b = scalar[l].misalignment_sigma3();
        for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(s3a[i], s3b[i]);
    }
}

// --- Layer 3: the full fleet, batched vs scalar, serial and threaded. -----

[[nodiscard]] std::vector<system::FleetJob> differential_jobs() {
    using system::BoresightSystem;
    std::vector<system::FleetJob> jobs;

    {  // The bench shape: plain native multi-seed.
        system::FleetJob j;
        j.scenario = "city-drive";
        j.duration_s = 20.0;
        j.seeds_per_job = 8;
        jobs.push_back(j);
    }
    {  // Adaptive tuner state must batch identically.
        system::FleetJob j;
        j.scenario = "highway-drive";
        j.duration_s = 20.0;
        j.seeds_per_job = 2;
        j.use_adaptive_tuner = true;
        jobs.push_back(j);
    }
    {  // 33 lanes: one unit past kMaxBatchLanes, forcing a 32+1 split;
        // plus a measurement-noise override.
        system::FleetJob j;
        j.scenario = "emergency-brake";
        j.duration_s = 12.0;
        j.seeds_per_job = 33;
        j.meas_noise_mps2 = 0.015;
        jobs.push_back(j);
    }
    {  // Bump + per-lane §11.1 calibration.
        system::FleetJob j;
        j.scenario = "carpark-bump";
        j.duration_s = 20.0;
        j.seeds_per_job = 8;
        j.calibration = system::FleetCalibration{.duration_s = 10.0};
        jobs.push_back(j);
    }
    {  // Sabre jobs must fall back to the scalar path untouched.
        system::FleetJob j;
        j.scenario = "city-drive";
        j.processor = BoresightSystem::Processor::kSabre;
        j.duration_s = 10.0;
        j.seeds_per_job = 2;
        jobs.push_back(j);
    }
    {  // Single-seed job: the degenerate one-lane unit.
        system::FleetJob j;
        j.scenario = "trailer-sway";
        j.duration_s = 20.0;
        j.seeds_per_job = 1;
        jobs.push_back(j);
    }
    {  // Active fault: not batchable, scalar on both configurations.
        system::FleetJob j;
        j.scenario = "city-drive";
        j.duration_s = 15.0;
        j.seeds_per_job = 3;
        j.fault = system::FleetFault{.type = system::FaultType::kUartDropout,
                                     .intensity = 0.02};
        jobs.push_back(j);
    }
    {  // Zero-intensity fault cell: an exact control, and batchable.
        system::FleetJob j;
        j.scenario = "city-drive";
        j.duration_s = 15.0;
        j.seeds_per_job = 3;
        j.fault = system::FleetFault{.type = system::FaultType::kUartDropout,
                                     .intensity = 0.0};
        jobs.push_back(j);
    }
    return jobs;
}

TEST(EnsembleBatch, FleetResultsBitwiseEqualScalarForEverySeed) {
    const auto jobs = differential_jobs();

    const auto realize = [&](bool batch, std::size_t threads) {
        system::FleetRunner runner(
            {.threads = threads, .share_traces = true,
             .batch_realizations = batch});
        return runner.run(jobs);
    };

    const auto reference = realize(false, 1);
    const struct {
        bool batch;
        std::size_t threads;
        const char* what;
    } variants[] = {
        {true, 1, "batched serial"},
        {true, 8, "batched 8-thread"},
        {false, 8, "scalar 8-thread"},
    };
    for (const auto& v : variants) {
        const auto got = realize(v.batch, v.threads);
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            ASSERT_EQ(got[j].seeds.size(), reference[j].seeds.size())
                << v.what << " job " << j;
            for (std::size_t s = 0; s < reference[j].seeds.size(); ++s) {
                EXPECT_EQ(seed_bytes(got[j].seeds[s]),
                          seed_bytes(reference[j].seeds[s]))
                    << v.what << ": job " << j << " (" << jobs[j].scenario
                    << ") seed index " << s
                    << " diverged from the scalar serial reference";
            }
        }
    }
}

// The batched path must also survive sharding: a mid-job slice boundary
// makes the first unit of the slice start at a nonzero seed index.
TEST(EnsembleBatch, ShardSliceStartingMidJobMatchesScalar) {
    std::vector<system::FleetJob> jobs;
    system::FleetJob j;
    j.scenario = "highway-drive";
    j.duration_s = 15.0;
    j.seeds_per_job = 8;
    jobs.push_back(j);

    system::FleetRunner batched(
        {.threads = 2, .share_traces = true, .batch_realizations = true});
    system::FleetRunner scalar(
        {.threads = 1, .share_traces = true, .batch_realizations = false});
    const auto got = batched.run_items(jobs, 3, 5);
    const auto ref = scalar.run_items(jobs, 3, 5);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(seed_bytes(got[i]), seed_bytes(ref[i]))
            << "slice item " << i << " (seed index " << 3 + i << ")";
    }
}

}  // namespace
