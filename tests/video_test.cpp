#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "math/rotation.hpp"
#include "video/affine.hpp"
#include "video/fixed.hpp"
#include "video/framebuffer.hpp"
#include "video/pipeline.hpp"
#include "video/trig_lut.hpp"
#include "video/video_system.hpp"

namespace {

using namespace ob::video;
using ob::math::deg2rad;
using ob::math::EulerAngles;

// --- Fixed point -------------------------------------------------------------

TEST(Fixed, IntRoundTrip) {
    for (int v : {-1000, -1, 0, 1, 7, 32767}) {
        EXPECT_EQ(Fixed::from_int(v).to_int(), v);
    }
}

TEST(Fixed, ArithmeticMatchesDouble) {
    const Fixed a = Fixed::from_double(3.25);
    const Fixed b = Fixed::from_double(-1.5);
    EXPECT_DOUBLE_EQ((a + b).to_double(), 1.75);
    EXPECT_DOUBLE_EQ((a - b).to_double(), 4.75);
    EXPECT_NEAR((a * b).to_double(), -4.875, 1.0 / Fixed::kOne);
    EXPECT_DOUBLE_EQ((-a).to_double(), -3.25);
}

TEST(Fixed, MultiplicationPrecision) {
    // Error sources: each operand quantizes to half an LSB, which the
    // product scales by the other operand's magnitude, plus one LSB of
    // result truncation: |err| <= (|x| + |y| + 2) * LSB.
    for (double x : {0.1, 0.5, 0.99, -0.7, 123.456}) {
        for (double y : {0.9999, -0.333, 2.5}) {
            const double got =
                (Fixed::from_double(x) * Fixed::from_double(y)).to_double();
            const double bound =
                (std::abs(x) + std::abs(y) + 2.0) / Fixed::kOne;
            EXPECT_NEAR(got, x * y, bound) << x << "*" << y;
        }
    }
}

TEST(Fixed, TruncationTowardNegativeInfinity) {
    EXPECT_EQ(Fixed::from_double(1.75).to_int(), 1);
    EXPECT_EQ(Fixed::from_double(-1.25).to_int(), -2);  // arithmetic shift
    EXPECT_EQ(Fixed::from_double(1.75).to_int_round(), 2);
    EXPECT_EQ(Fixed::from_double(-1.25).to_int_round(), -1);
}

TEST(Fixed, FromDoubleRangeCheck) {
    EXPECT_THROW((void)Fixed::from_double(40000.0), std::overflow_error);
    EXPECT_THROW((void)Fixed::from_double(-40000.0), std::overflow_error);
    EXPECT_NO_THROW((void)Fixed::from_double(32000.0));
}

// --- Trig LUT ------------------------------------------------------------------

TEST(TrigLut, KnownAngles) {
    const TrigLut lut;
    EXPECT_NEAR(lut.sin_at(0).to_double(), 0.0, 1e-4);
    EXPECT_NEAR(lut.sin_at(256).to_double(), 1.0, 1e-4);   // pi/2
    EXPECT_NEAR(lut.sin_at(512).to_double(), 0.0, 1e-4);   // pi
    EXPECT_NEAR(lut.cos_at(0).to_double(), 1.0, 1e-4);
    EXPECT_NEAR(lut.cos_at(512).to_double(), -1.0, 1e-4);
}

TEST(TrigLut, IndexWrapsAndNegatives) {
    const TrigLut lut;
    EXPECT_EQ(lut.sin_at(1024).raw(), lut.sin_at(0).raw());
    EXPECT_EQ(TrigLut::index_from_radians(0.0), 0u);
    EXPECT_EQ(TrigLut::index_from_radians(2.0 * ob::math::kPi), 0u);
    // -pi/2 wraps to 3/4 of the table.
    EXPECT_EQ(TrigLut::index_from_radians(-ob::math::kPi / 2.0), 768u);
}

TEST(TrigLut, AccuracyBound) {
    // 1024 entries -> worst-case error ~ pi/1024 (nearest-entry rounding)
    // plus the Q16.16 quantization.
    const TrigLut lut;
    EXPECT_LT(lut.max_abs_error(), ob::math::kPi / 1024.0 + 2e-4);
}

TEST(TrigLut, PythagoreanIdentityHolds) {
    const TrigLut lut;
    for (std::uint32_t i = 0; i < 1024; i += 17) {
        const double s = lut.sin_at(i).to_double();
        const double c = lut.cos_at(i).to_double();
        EXPECT_NEAR(s * s + c * c, 1.0, 5e-4) << "index " << i;
    }
}

// --- Framebuffer ---------------------------------------------------------------

TEST(Framebuffer, PackUnpackRoundTrip) {
    const Rgb c = unpack_rgb(pack_rgb(255, 128, 64));
    EXPECT_EQ(c.r, 255);  // 5-bit channel, replicated expansion
    EXPECT_NEAR(c.g, 128, 4);
    EXPECT_NEAR(c.b, 64, 8);
}

TEST(Framebuffer, PsnrIdenticalIsInfinite) {
    const Frame f = make_test_pattern(64, 48);
    EXPECT_TRUE(std::isinf(f.psnr_against(f)));
}

TEST(Framebuffer, PsnrDetectsCorruption) {
    const Frame f = make_test_pattern(64, 48);
    Frame g = f;
    for (std::size_t x = 0; x < 64; ++x) g.set(x, 10, pack_rgb(1, 2, 3));
    const double psnr = g.psnr_against(f);
    EXPECT_GT(psnr, 10.0);
    EXPECT_LT(psnr, 40.0);
}

TEST(Framebuffer, PpmWriterProducesValidHeader) {
    const Frame f = make_test_pattern(16, 8);
    const std::string path = ::testing::TempDir() + "/ob_frame.ppm";
    f.write_ppm(path);
    std::ifstream in(path, std::ios::binary);
    std::string magic;
    int w = 0, h = 0, maxv = 0;
    in >> magic >> w >> h >> maxv;
    EXPECT_EQ(magic, "P6");
    EXPECT_EQ(w, 16);
    EXPECT_EQ(h, 8);
    EXPECT_EQ(maxv, 255);
    in.get();  // single whitespace
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(data.size(), 16u * 8u * 3u);
    std::remove(path.c_str());
}

TEST(ZbtSram, ReadWriteAndAccounting) {
    ZbtSram ram(1024);
    ram.write(5, 0xBEEF);
    EXPECT_EQ(ram.read(5), 0xBEEF);
    EXPECT_EQ(ram.reads(), 1u);
    EXPECT_EQ(ram.writes(), 1u);
    EXPECT_THROW((void)ram.read(512), std::out_of_range);
    EXPECT_THROW(ram.write(512, 0), std::out_of_range);
}

TEST(ZbtSram, FrameStoreLoadRoundTrip) {
    ZbtSram ram;
    const Frame f = make_test_pattern(320, 240);
    ram.store_frame(f);
    const Frame g = ram.load_frame(320, 240);
    EXPECT_TRUE(std::isinf(g.psnr_against(f)));
}

TEST(ZbtSram, RejectsOversizedFrame) {
    ZbtSram ram(1024);  // 512 words
    const Frame f(32, 32);  // 1024 words
    EXPECT_THROW(ram.store_frame(f), std::out_of_range);
}

// --- Affine transforms -----------------------------------------------------------

TEST(Affine, RotateCoordinatesMatchesFloatMath) {
    const TrigLut lut;
    const Coord centre{160, 120};
    for (const double deg : {0.0, 3.0, -5.0, 45.0, 90.0, 180.0}) {
        const std::uint32_t bam = TrigLut::index_from_radians(deg2rad(deg));
        // Quantized angle actually applied by the LUT:
        const double q = 2.0 * ob::math::kPi * bam / 1024.0;
        for (const Coord in : {Coord{0, 0}, Coord{319, 239}, Coord{200, 100}}) {
            const Coord got = rotate_coordinates(lut, bam, in, centre);
            const double dx = in.x - centre.x;
            const double dy = in.y - centre.y;
            const double ex = dx * std::cos(q) - dy * std::sin(q) + centre.x;
            const double ey = dx * std::sin(q) + dy * std::cos(q) + centre.y;
            EXPECT_NEAR(got.x, ex, 1.1) << deg << " deg";
            EXPECT_NEAR(got.y, ey, 1.1) << deg << " deg";
        }
    }
}

TEST(Affine, ZeroParamsIsIdentity) {
    const TrigLut lut;
    const Frame f = make_test_pattern(80, 60);
    const AffineParams p{};
    EXPECT_TRUE(std::isinf(affine_fixed_inverse(f, lut, p).psnr_against(f)));
    EXPECT_TRUE(std::isinf(affine_fixed_forward(f, lut, p).psnr_against(f)));
    EXPECT_TRUE(std::isinf(affine_reference(f, p, false).psnr_against(f)));
}

TEST(Affine, PureTranslationShiftsPixels) {
    const TrigLut lut;
    Frame f(40, 30, pack_rgb(0, 0, 0));
    f.set(10, 10, pack_rgb(255, 255, 255));
    AffineParams p;
    p.bx_px = 5;
    p.by_px = -3;
    const Frame out = affine_fixed_forward(f, lut, p);
    EXPECT_EQ(out.at(15, 7), pack_rgb(255, 255, 255));
}

TEST(Affine, FixedInverseTracksFloatReference) {
    const TrigLut lut;
    const Frame f = make_test_pattern(160, 120);
    AffineParams p;
    // Use an angle the 1024-entry LUT represents exactly (a whole BAM
    // step) so the comparison isolates the fixed-point datapath from the
    // angle quantization (which TrigLut.AccuracyBound covers separately).
    p.theta_rad = 2.0 * ob::math::kPi * 12.0 / 1024.0;  // ~4.2 deg
    p.bx_px = 6.0;
    p.by_px = -4.0;
    const Frame fixed = affine_fixed_inverse(f, lut, p);
    const Frame ref = affine_reference(f, p, /*bilinear=*/false);
    // Same mapping, nearest sampling: residual differences are +-1 px
    // coordinate rounding (truncation vs round-to-nearest) on feature
    // edges. The overwhelming majority of pixels must agree exactly.
    std::size_t same = 0;
    for (std::size_t y = 0; y < f.height(); ++y)
        for (std::size_t x = 0; x < f.width(); ++x)
            if (fixed.at(x, y) == ref.at(x, y)) ++same;
    const double frac =
        static_cast<double>(same) / static_cast<double>(f.width() * f.height());
    EXPECT_GT(frac, 0.85);
    EXPECT_GT(fixed.psnr_against(ref), 14.0);
}

TEST(Affine, ForwardMappingLeavesHolesInverseDoesNot) {
    const TrigLut lut;
    Frame f(100, 100, pack_rgb(255, 255, 255));  // solid white
    AffineParams p;
    p.theta_rad = deg2rad(10.0);
    const Pixel fill = pack_rgb(0, 0, 0);
    const Frame fwd = affine_fixed_forward(f, lut, p, fill);
    const Frame inv = affine_fixed_inverse(f, lut, p, fill);
    // Count interior fill pixels (holes), away from rotation borders.
    std::size_t fwd_holes = 0, inv_holes = 0;
    for (std::size_t y = 30; y < 70; ++y) {
        for (std::size_t x = 30; x < 70; ++x) {
            if (fwd.at(x, y) == fill) ++fwd_holes;
            if (inv.at(x, y) == fill) ++inv_holes;
        }
    }
    EXPECT_GT(fwd_holes, 0u) << "forward mapping must show dropout holes";
    EXPECT_EQ(inv_holes, 0u) << "inverse mapping fills every output pixel";
}

TEST(Affine, MisalignmentCorrectionImprovesPsnr) {
    // The headline video demo: a camera misaligned by (roll,pitch,yaw)
    // produces a transformed image; correcting with the estimated angles
    // must bring it substantially closer to the true scene.
    const TrigLut lut;
    const Frame scene = make_test_pattern(160, 120);
    const EulerAngles mis = EulerAngles::from_deg(5.0, 1.0, -1.5);
    const double focal = 150.0;
    const Frame camera = simulate_misaligned_camera(scene, mis, focal);
    const double before = camera.psnr_against(scene);

    const AffineParams correction = params_from_misalignment(mis, focal);
    const Frame corrected = affine_fixed_inverse(camera, lut, correction);
    // Compare interior region (borders lose pixels to the rotation).
    double after = corrected.psnr_against(scene);
    EXPECT_GT(after, before + 3.0)
        << "correction must improve PSNR (before=" << before
        << " after=" << after << ")";
}

TEST(Affine, ParamsFromMisalignmentGeometry) {
    const AffineParams p =
        params_from_misalignment(EulerAngles::from_deg(2.0, 1.0, -1.0), 300.0);
    EXPECT_NEAR(p.theta_rad, deg2rad(2.0), 1e-12);
    EXPECT_NEAR(p.bx_px, 300.0 * std::tan(deg2rad(-1.0)), 1e-9);
    EXPECT_NEAR(p.by_px, 300.0 * std::tan(deg2rad(1.0)), 1e-9);
}

// --- Cycle-accurate pipeline ------------------------------------------------------

TEST(Pipeline, LatencyIsExactlyFiveCycles) {
    const TrigLut lut;
    RotatePipeline pipe(lut, Coord{50, 50});
    pipe.set_angle(0);
    ob::hcl::Simulation sim;
    sim.add(pipe);
    pipe.feed(Coord{10, 20});
    for (int cycle = 1; cycle <= RotatePipeline::kLatency; ++cycle) {
        sim.step();
        if (cycle < RotatePipeline::kLatency) {
            EXPECT_FALSE(pipe.output().has_value()) << "cycle " << cycle;
        } else {
            ASSERT_TRUE(pipe.output().has_value());
            EXPECT_EQ(pipe.output()->x, 10);
            EXPECT_EQ(pipe.output()->y, 20);
        }
    }
    // No further output without new input.
    sim.step();
    EXPECT_FALSE(pipe.output().has_value());
}

TEST(Pipeline, ThroughputOnePixelPerCycle) {
    const TrigLut lut;
    RotatePipeline pipe(lut, Coord{0, 0});
    pipe.set_angle(TrigLut::index_from_radians(deg2rad(30.0)));
    ob::hcl::Simulation sim;
    sim.add(pipe);
    int outputs = 0;
    for (int i = 0; i < 100; ++i) {
        pipe.feed(Coord{i, -i});
        sim.step();
        if (pipe.output()) ++outputs;
    }
    EXPECT_EQ(outputs, 100 - RotatePipeline::kLatency + 1);
}

TEST(Pipeline, MatchesFunctionalModel) {
    const TrigLut lut;
    const Coord centre{160, 120};
    const std::uint32_t bam = TrigLut::index_from_radians(deg2rad(7.0));
    RotatePipeline pipe(lut, centre);
    pipe.set_angle(bam);
    ob::hcl::Simulation sim;
    sim.add(pipe);

    std::vector<Coord> fed;
    std::vector<Coord> got;
    for (int i = 0; i < 64 + RotatePipeline::kLatency; ++i) {
        if (i < 64) {
            const Coord in{i * 5, 240 - i};
            pipe.feed(in);
            fed.push_back(in);
        }
        sim.step();
        if (const auto o = pipe.output()) got.push_back(*o);
    }
    ASSERT_EQ(got.size(), fed.size());
    for (std::size_t i = 0; i < fed.size(); ++i) {
        const Coord expect = rotate_coordinates(lut, bam, fed[i], centre);
        EXPECT_EQ(got[i].x, expect.x);
        EXPECT_EQ(got[i].y, expect.y);
    }
}

TEST(Pipeline, FrameCycleCountIsPixelsPlusLatency) {
    const TrigLut lut;
    const Frame f = make_test_pattern(64, 48);
    AffineParams p;
    p.theta_rad = deg2rad(3.0);
    const auto res = pipeline_transform_frame(f, lut, p);
    EXPECT_EQ(res.timing.cycles, 64u * 48u + RotatePipeline::kLatency - 1);
}

TEST(Pipeline, FrameMatchesDirectForwardMapping) {
    const TrigLut lut;
    const Frame f = make_test_pattern(64, 48);
    AffineParams p;
    p.theta_rad = deg2rad(-6.0);
    p.bx_px = 3;
    p.by_px = 2;
    const auto piped = pipeline_transform_frame(f, lut, p);
    const Frame direct = affine_fixed_forward(f, lut, p);
    EXPECT_TRUE(std::isinf(piped.frame.psnr_against(direct)));
}

// --- VideoSystem -------------------------------------------------------------------

TEST(VideoSystem, DoubleBufferingAlternatesBanks) {
    VideoSystem vs({.width = 64, .height = 48});
    const Frame f = make_test_pattern(64, 48);
    const auto r1 = vs.process_frame(f);
    const auto r2 = vs.process_frame(f);
    const auto r3 = vs.process_frame(f);
    EXPECT_NE(r1.front_bank, r2.front_bank);
    EXPECT_EQ(r1.front_bank, r3.front_bank);
    EXPECT_EQ(vs.frames_processed(), 3u);
}

TEST(VideoSystem, IdentityAnglesPassThrough) {
    VideoSystem vs({.width = 64, .height = 48});
    const Frame f = make_test_pattern(64, 48);
    const auto r = vs.process_frame(f);
    EXPECT_TRUE(std::isinf(r.display.psnr_against(f)));
}

TEST(VideoSystem, AngleProviderDrivesCorrection) {
    VideoSystem vs({.width = 128, .height = 96, .focal_px = 120.0});
    const EulerAngles mis = EulerAngles::from_deg(4.0, 0.5, -0.5);
    vs.set_angle_provider([&] { return mis; });
    const Frame scene = make_test_pattern(128, 96);
    const Frame camera = simulate_misaligned_camera(scene, mis, 120.0);
    const auto r = vs.process_frame(camera);
    EXPECT_GT(r.display.psnr_against(scene),
              camera.psnr_against(scene) + 3.0);
}

TEST(VideoSystem, TimingSupportsRealTimeRates) {
    // 320x240 at the VGA pixel clock: comfortably beyond 60 fps — the
    // paper's point that the fabric handles video in real time.
    VideoSystem vs({.width = 320, .height = 240});
    const auto r = vs.process_frame(make_test_pattern(320, 240));
    EXPECT_GT(r.timing.fps(), 60.0);
}

TEST(VideoSystem, RejectsMismatchedFrame) {
    VideoSystem vs({.width = 64, .height = 48});
    EXPECT_THROW((void)vs.process_frame(Frame(32, 32)), std::invalid_argument);
}

TEST(VideoSystem, RejectsOversizedConfig) {
    EXPECT_THROW(VideoSystem({.width = 2048, .height = 1024}),
                 std::invalid_argument);
}

}  // namespace
