// Direct unit coverage of the ResidualMonitor — the fault campaigns'
// detector. The fleet and system suites only see it end to end; here the
// threshold comparison, the sliding-window ring, the latched alarm and the
// in-place reset are pinned one behavior at a time.

#include <gtest/gtest.h>

#include "core/residual_monitor.hpp"
#include "math/matrix.hpp"
#include "util/alloc_counter.hpp"

OB_DEFINE_COUNTING_OPERATOR_NEW

namespace {

using ob::core::ResidualMonitor;
using ob::math::Vec2;

constexpr Vec2 kSigma3{0.3, 0.3};

/// One add() = two axis samples; `hot` pushes both axes past 3-sigma.
void add_samples(ResidualMonitor& m, std::size_t n, bool hot) {
    const Vec2 r = hot ? Vec2{1.0, 1.0} : Vec2{0.01, 0.01};
    for (std::size_t i = 0; i < n; ++i) m.add(r, kSigma3);
}

TEST(ResidualMonitor, CountsPerAxisExceedances) {
    ResidualMonitor m;
    // x over, y under: exactly one exceedance out of two axis samples.
    m.add(Vec2{0.5, 0.1}, kSigma3);
    EXPECT_EQ(m.samples(), 2u);
    EXPECT_EQ(m.exceedances(), 1u);
    EXPECT_DOUBLE_EQ(m.exceedance_rate(), 0.5);
    // Exactly at the threshold is not an exceedance (strict compare).
    m.add(Vec2{0.3, -0.3}, kSigma3);
    EXPECT_EQ(m.exceedances(), 1u);
    // Negative residuals count by magnitude.
    m.add(Vec2{-0.5, -0.5}, kSigma3);
    EXPECT_EQ(m.exceedances(), 3u);
    EXPECT_EQ(m.samples(), 6u);
}

TEST(ResidualMonitor, WindowedRateForgetsOldExceedances) {
    ResidualMonitor m(/*window=*/100, /*alarm_rate=*/0.99,
                      /*alarm_min_samples=*/1);
    add_samples(m, 50, /*hot=*/true);  // 100 hot axis samples fill the ring
    EXPECT_DOUBLE_EQ(m.windowed_rate(), 1.0);
    add_samples(m, 50, /*hot=*/false);  // evict them all
    EXPECT_DOUBLE_EQ(m.windowed_rate(), 0.0);
    // Lifetime counters keep the full history.
    EXPECT_EQ(m.exceedances(), 100u);
    EXPECT_EQ(m.samples(), 200u);
    EXPECT_DOUBLE_EQ(m.exceedance_rate(), 0.5);
}

TEST(ResidualMonitor, WindowedRateBeforeWindowFills) {
    ResidualMonitor m(/*window=*/1000, /*alarm_rate=*/0.99,
                      /*alarm_min_samples=*/1);
    add_samples(m, 5, /*hot=*/true);
    // 10 samples in a 1000-slot ring: the rate divides by the fill count,
    // not the capacity.
    EXPECT_DOUBLE_EQ(m.windowed_rate(), 1.0);
}

TEST(ResidualMonitor, AlarmWaitsForMinSamples) {
    ResidualMonitor m(/*window=*/2000, /*alarm_rate=*/0.05,
                      /*alarm_min_samples=*/200);
    // 99 all-hot axis samples: rate 100% but below the sample floor.
    add_samples(m, 49, /*hot=*/true);
    m.add(Vec2{1.0, 0.0}, kSigma3);  // 99th/100th samples, x hot
    EXPECT_FALSE(m.flagged());
    add_samples(m, 51, /*hot=*/true);
    EXPECT_TRUE(m.flagged());
    // flagged_at records the axis-sample count at the latch: the first
    // add() at or past the floor with the rate already over.
    EXPECT_EQ(m.flagged_at(), 200u);
}

TEST(ResidualMonitor, AlarmIgnoresHealthyRate) {
    ResidualMonitor m(/*window=*/2000, /*alarm_rate=*/0.05,
                      /*alarm_min_samples=*/200);
    // Healthy tuning: ~0.27% exceedances, two orders below the alarm.
    for (std::size_t i = 0; i < 5000; ++i) {
        const bool spike = i % 370 == 0;
        m.add(spike ? Vec2{1.0, 0.0} : Vec2{0.01, 0.01}, kSigma3);
    }
    EXPECT_FALSE(m.flagged());
    EXPECT_EQ(m.flagged_at(), 0u);
    EXPECT_LT(m.windowed_rate(), 0.05);
}

TEST(ResidualMonitor, AlarmLatchesUntilReset) {
    ResidualMonitor m(/*window=*/100, /*alarm_rate=*/0.05,
                      /*alarm_min_samples=*/10);
    add_samples(m, 50, /*hot=*/true);
    ASSERT_TRUE(m.flagged());
    const std::size_t at = m.flagged_at();
    // A long healthy stretch empties the window, but the latch holds.
    add_samples(m, 1000, /*hot=*/false);
    EXPECT_DOUBLE_EQ(m.windowed_rate(), 0.0);
    EXPECT_TRUE(m.flagged());
    EXPECT_EQ(m.flagged_at(), at);

    m.reset();
    EXPECT_FALSE(m.flagged());
    EXPECT_EQ(m.flagged_at(), 0u);
    EXPECT_EQ(m.samples(), 0u);
    EXPECT_EQ(m.exceedances(), 0u);
    EXPECT_DOUBLE_EQ(m.windowed_rate(), 0.0);
    EXPECT_EQ(m.stats_x().count(), 0u);
    // The reset monitor behaves like a fresh one (same floor, same latch).
    add_samples(m, 50, /*hot=*/true);
    EXPECT_TRUE(m.flagged());
    EXPECT_EQ(m.flagged_at(), at);
}

TEST(ResidualMonitor, SteadyStateAddNeverAllocates) {
    // The monitor sits on the zero-allocation fusion hot path: after
    // construction preallocates the ring, add() must not touch the heap —
    // including across ring wraparound and the alarm latch.
    ResidualMonitor m(/*window=*/64, /*alarm_rate=*/0.05,
                      /*alarm_min_samples=*/10);
    const std::uint64_t before = ob::util::alloc_count();
    add_samples(m, 10000, /*hot=*/true);
    add_samples(m, 10000, /*hot=*/false);
    m.reset();
    add_samples(m, 100, /*hot=*/true);
    EXPECT_EQ(ob::util::alloc_count() - before, 0u);
    EXPECT_TRUE(m.flagged());
}

TEST(ResidualMonitor, ZeroWindowClampsToOne) {
    ResidualMonitor m(/*window=*/0, /*alarm_rate=*/0.5,
                      /*alarm_min_samples=*/1);
    m.add(Vec2{1.0, 0.01}, kSigma3);  // x hot lands first, y healthy evicts
    // Window of one slot: only the last axis sample (healthy y) remains.
    EXPECT_DOUBLE_EQ(m.windowed_rate(), 0.0);
    m.add(Vec2{0.01, 1.0}, kSigma3);
    EXPECT_DOUBLE_EQ(m.windowed_rate(), 1.0);
}

TEST(ResidualMonitor, StatsTrackSignedResiduals) {
    // The per-axis RunningStats see the raw signed residuals (a biased
    // filter shows up as a shifted mean), while the exceedance compare
    // uses the magnitude.
    ResidualMonitor m;
    m.add(Vec2{0.1, -0.2}, kSigma3);
    m.add(Vec2{0.3, 0.4}, kSigma3);
    EXPECT_EQ(m.stats_x().count(), 2u);
    EXPECT_EQ(m.stats_y().count(), 2u);
    EXPECT_NEAR(m.stats_x().mean(), 0.2, 1e-12);
    EXPECT_NEAR(m.stats_y().mean(), 0.1, 1e-12);
}

}  // namespace
