#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "math/rotation.hpp"
#include "sim/scenario.hpp"
#include "sim/trajectory.hpp"
#include "system/boresight_system.hpp"
#include "system/experiment.hpp"
#include "system/fleet.hpp"

// Error paths for every configuration struct an operator can get wrong:
// bad configs must be rejected loudly at construction, not silently
// misbehave thousands of epochs later (a zero bitrate, for instance, would
// otherwise just stall the CAN model; a zero measurement noise would feed
// the filter a singular innovation covariance).

namespace {

using namespace ob;
using math::EulerAngles;

// --- BoresightSystem::Config -----------------------------------------------

system::BoresightSystem::Config valid_system_config() {
    return {};  // the defaults are a working system
}

TEST(BoresightSystemConfigValidation, DefaultsAreValid) {
    EXPECT_NO_THROW(valid_system_config().validate());
    EXPECT_NO_THROW(system::BoresightSystem sys(valid_system_config()));
}

TEST(BoresightSystemConfigValidation, RejectsZeroCanBitrate) {
    auto cfg = valid_system_config();
    cfg.can_bitrate = 0.0;
    EXPECT_THROW(system::BoresightSystem sys(cfg), std::invalid_argument);
    cfg.can_bitrate = -500000.0;
    EXPECT_THROW(system::BoresightSystem sys(cfg), std::invalid_argument);
}

TEST(BoresightSystemConfigValidation, RejectsZeroUartBaud) {
    auto cfg = valid_system_config();
    cfg.uart_baud = 0.0;
    EXPECT_THROW(system::BoresightSystem sys(cfg), std::invalid_argument);
}

TEST(BoresightSystemConfigValidation, RejectsNonPositiveFilterNoise) {
    auto cfg = valid_system_config();
    cfg.filter.meas_noise_mps2 = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.filter.meas_noise_mps2 = -0.01;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(BoresightSystemConfigValidation, RejectsNegativeProcessNoise) {
    auto cfg = valid_system_config();
    cfg.filter.angle_process_noise = -1e-9;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(BoresightSystemConfigValidation, RejectsBadInitialSigmas) {
    auto cfg = valid_system_config();
    cfg.filter.init_angle_sigma = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = valid_system_config();
    cfg.filter.init_bias_sigma = -0.05;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(BoresightSystemConfigValidation, RejectsBadSabreTuning) {
    auto cfg = valid_system_config();
    cfg.sabre.r_sigma = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = valid_system_config();
    cfg.sabre.q_variance = -1e-14;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = valid_system_config();
    cfg.sabre.p0_sigma = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(BoresightSystemConfigValidation, RejectsBadTuner) {
    auto cfg = valid_system_config();
    cfg.tuner.floor_mps2 = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = valid_system_config();
    cfg.tuner.ceiling_mps2 = 0.5 * cfg.tuner.floor_mps2;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(BoresightSystemConfigValidation, RejectsOutOfRangeFaultProbabilities) {
    auto cfg = valid_system_config();
    cfg.dmu_link_faults.drop_probability = 1.5;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = valid_system_config();
    cfg.acc_link_faults.bit_flip_probability = -0.1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = valid_system_config();
    cfg.acc_link_faults.framing_error_probability = 2.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(BoresightSystemConfigValidation, RejectsBadSupervisor) {
    // System validation must reach the nested supervisor knobs: a broken
    // staleness ladder or a dead delivery window fails at construction,
    // not as a watchdog that silently never trips.
    auto cfg = valid_system_config();
    cfg.supervisor.delivery_window = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = valid_system_config();
    cfg.supervisor.coast_staleness_epochs =
        cfg.supervisor.degrade_staleness_epochs;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = valid_system_config();
    cfg.supervisor.fail_staleness_epochs =
        cfg.supervisor.coast_staleness_epochs;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = valid_system_config();
    cfg.supervisor.coast_sigma_rate = -1e-9;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// --- ExperimentConfig -------------------------------------------------------

system::ExperimentConfig valid_experiment_config() {
    system::ExperimentConfig cfg;
    cfg.scenario = sim::ScenarioConfig::static_level(
        10.0, EulerAngles::from_deg(1.0, 1.0, 0.0));
    cfg.calibration_duration_s = 5.0;
    return cfg;
}

TEST(ExperimentConfigValidation, ValidConfigPasses) {
    EXPECT_NO_THROW(valid_experiment_config().validate());
}

TEST(ExperimentConfigValidation, RejectsEmptyLabel) {
    auto cfg = valid_experiment_config();
    cfg.label.clear();
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ExperimentConfigValidation, RejectsEmptyScenario) {
    auto cfg = valid_experiment_config();
    cfg.scenario.profile = nullptr;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    EXPECT_THROW((void)system::run_experiment(cfg), std::invalid_argument);
}

TEST(ExperimentConfigValidation, RejectsNonPositiveScenarioDuration) {
    auto cfg = valid_experiment_config();
    cfg.scenario.profile =
        std::make_shared<sim::StaticProfile>(EulerAngles{}, -5.0);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ExperimentConfigValidation, RejectsNonPositiveSampleRate) {
    auto cfg = valid_experiment_config();
    cfg.scenario.sample_rate_hz = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ExperimentConfigValidation, RejectsNonPositiveCalibrationDuration) {
    auto cfg = valid_experiment_config();
    cfg.calibration_duration_s = -60.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    // ...but an uncalibrated run never reads the field.
    cfg.calibrate = false;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(ExperimentConfigValidation, RejectsBadFilterTuning) {
    auto cfg = valid_experiment_config();
    cfg.filter.meas_noise_mps2 = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = valid_experiment_config();
    cfg.filter.angle_process_noise = -1.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = valid_experiment_config();
    cfg.filter.init_angle_sigma = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ExperimentConfigValidation, RejectsBadTunerWhenEnabled) {
    auto cfg = valid_experiment_config();
    cfg.tuner.floor_mps2 = 0.0;
    EXPECT_NO_THROW(cfg.validate());  // tuner off: field unused
    cfg.use_adaptive_tuner = true;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// --- FleetJob ---------------------------------------------------------------

TEST(FleetJobValidation, RejectsEmptyScenario) {
    system::FleetJob job;
    EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(FleetJobValidation, RejectsUnknownScenario) {
    system::FleetJob job;
    job.scenario = "warp-drive";
    EXPECT_THROW(job.validate(), std::invalid_argument);
    EXPECT_THROW((void)system::run_fleet_job(job), std::invalid_argument);
}

TEST(FleetJobValidation, RejectsNegativeDurationOverride) {
    system::FleetJob job;
    job.scenario = "city-drive";
    job.duration_s = -1.0;
    EXPECT_THROW(job.validate(), std::invalid_argument);
    job.duration_s = 0.0;  // 0 means "use the spec default"
    EXPECT_NO_THROW(job.validate());
}

TEST(FleetJobValidation, RejectsMisalignmentOutsideSmallAngleRegime) {
    system::FleetJob job;
    job.scenario = "city-drive";
    // The EKF linearizes the mounting DCM; beyond ~15 deg per axis the
    // sweep would measure linearization error, not tuning.
    job.misalignment = EulerAngles::from_deg(0.0, 20.0, 0.0);
    EXPECT_THROW(job.validate(), std::invalid_argument);
    job.misalignment = EulerAngles::from_deg(0.0, 0.0, -20.0);
    EXPECT_THROW(job.validate(), std::invalid_argument);
    job.misalignment = EulerAngles::from_deg(-14.0, 10.0, 14.0);
    EXPECT_NO_THROW(job.validate());
}

TEST(FleetJobValidation, RejectsBadCalibrationDwell) {
    system::FleetJob job;
    job.scenario = "static-level";
    job.calibration = system::FleetCalibration{0.0};
    EXPECT_THROW(job.validate(), std::invalid_argument);
    job.calibration = system::FleetCalibration{-5.0};
    EXPECT_THROW(job.validate(), std::invalid_argument);
    job.calibration = system::FleetCalibration{30.0};
    EXPECT_NO_THROW(job.validate());
}

TEST(FleetJobValidation, RejectsTunerOverrideWithoutEnablingTheTuner) {
    system::FleetJob job;
    job.scenario = "city-drive";
    job.tuner = ob::core::AdaptiveTunerConfig{};
    // Knobs on a disabled tuner are always a config mistake.
    EXPECT_THROW(job.validate(), std::invalid_argument);
    job.use_adaptive_tuner = true;
    EXPECT_NO_THROW(job.validate());
    job.tuner->ceiling_mps2 = 0.5 * job.tuner->floor_mps2;
    EXPECT_THROW(job.validate(), std::invalid_argument);
}

TEST(FleetJobValidation, AcceptsAdaptiveTunerOnTheSabreProcessor) {
    system::FleetJob job;
    job.scenario = "city-drive";
    job.use_adaptive_tuner = true;
    job.processor = system::BoresightSystem::Processor::kSabre;
    // The firmware gained a writable measurement-noise register: adaptive
    // jobs run on both fusion processors now.
    EXPECT_NO_THROW(job.validate());
    job.processor = system::BoresightSystem::Processor::kNative;
    EXPECT_NO_THROW(job.validate());
}

TEST(FleetJobValidation, RejectsZeroSeedsPerJob) {
    system::FleetJob job;
    job.scenario = "city-drive";
    job.seeds_per_job = 0;
    // A job with no realizations has no primary result to report.
    EXPECT_THROW(job.validate(), std::invalid_argument);
    job.seeds_per_job = 1;
    EXPECT_NO_THROW(job.validate());
}

TEST(FleetJobValidation, RejectsSeedCountOverflowingTheSubSeedDerivation) {
    system::FleetJob job;
    job.scenario = "city-drive";
    // The FNV-1a sub-seed folds the realization index as 32 bits; a count
    // beyond 2^32 would alias seed streams instead of extending them.
    job.seeds_per_job = system::kFleetMaxSeedsPerJob + 1;
    EXPECT_THROW(job.validate(), std::invalid_argument);
    job.seeds_per_job = system::kFleetMaxSeedsPerJob;
    EXPECT_NO_THROW(job.validate());
    job.seeds_per_job = 8;
    EXPECT_NO_THROW(job.validate());
}

TEST(FleetSubSeed, IndexZeroPreservesTheSingleSeedContract) {
    // fleet_sub_seed(s, 0) == s is what keeps N=1 jobs (and the golden
    // corpus pinned to them) bitwise identical to the pre-seed-axis runs.
    EXPECT_EQ(system::fleet_sub_seed(0xDEADBEEFull, 0), 0xDEADBEEFull);
    // Higher indices must decorrelate: distinct from the stream seed and
    // from each other.
    const auto s1 = system::fleet_sub_seed(0xDEADBEEFull, 1);
    const auto s2 = system::fleet_sub_seed(0xDEADBEEFull, 2);
    EXPECT_NE(s1, 0xDEADBEEFull);
    EXPECT_NE(s1, s2);
}

TEST(FleetJobValidation, RejectsNonPositiveMeasurementNoiseOverride) {
    system::FleetJob job;
    job.scenario = "city-drive";
    job.meas_noise_mps2 = 0.0;
    EXPECT_THROW(job.validate(), std::invalid_argument);
    job.meas_noise_mps2 = -0.01;
    EXPECT_THROW(job.validate(), std::invalid_argument);
    job.meas_noise_mps2 = 0.0075;
    EXPECT_NO_THROW(job.validate());
}

TEST(AdaptiveTunerConfigValidation, RejectsBadKnobs) {
    ob::core::AdaptiveTunerConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
    cfg.raise_factor = 1.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = {};
    cfg.lower_factor = 1.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = {};
    cfg.window = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg = {};
    cfg.lower_threshold = 2.0 * cfg.raise_threshold;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// The constructor-level guarantee: a BoresightSystem cannot exist around a
// bad config, so every downstream component may assume validated numbers.
TEST(BoresightSystemConfigValidation, ConstructorRunsValidation) {
    auto cfg = valid_system_config();
    cfg.uart_baud = -9600.0;
    EXPECT_THROW(system::BoresightSystem sys(cfg), std::invalid_argument);
}

}  // namespace
