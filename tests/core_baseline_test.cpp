#include <gtest/gtest.h>

#include <cmath>

#include "core/alignment_report.hpp"
#include "core/batch_aligner.hpp"
#include "core/boresight_ekf.hpp"
#include "util/rng.hpp"

namespace {

using namespace ob::core;
using ob::math::deg2rad;
using ob::math::dcm_from_euler;
using ob::math::EulerAngles;
using ob::math::rad2deg;
using ob::math::Vec2;
using ob::math::Vec3;
using ob::util::Rng;

constexpr double kG = 9.80665;

Vec2 ideal_acc(const EulerAngles& mis, const Vec3& f_body) {
    const Vec3 f_s = dcm_from_euler(mis) * f_body;
    return Vec2{f_s[0], f_s[1]};
}

Vec3 rich_excitation(int k) {
    const double phase = 0.013 * k;
    return Vec3{2.0 * std::sin(phase), 1.5 * std::cos(1.7 * phase), -kG};
}

TEST(BatchAligner, NoiseFreeExactRecovery) {
    const EulerAngles truth = EulerAngles::from_deg(2.0, -1.5, 3.0);
    BatchLeastSquaresAligner batch;
    for (int k = 0; k < 2000; ++k) {
        const Vec3 f = rich_excitation(k);
        batch.add(f, ideal_acc(truth, f));
    }
    const auto sol = batch.solve();
    EXPECT_TRUE(sol.converged);
    EXPECT_NEAR(rad2deg(sol.misalignment.roll), 2.0, 1e-6);
    EXPECT_NEAR(rad2deg(sol.misalignment.pitch), -1.5, 1e-6);
    EXPECT_NEAR(rad2deg(sol.misalignment.yaw), 3.0, 1e-6);
    EXPECT_LT(sol.rms_residual, 1e-9);
}

TEST(BatchAligner, NoisyRecoveryScalesWithSampleCount) {
    const EulerAngles truth = EulerAngles::from_deg(1.0, 1.0, -2.0);
    Rng rng(3);
    BatchLeastSquaresAligner small_batch, large_batch;
    for (int k = 0; k < 20000; ++k) {
        const Vec3 f = rich_excitation(k);
        const Vec2 z = ideal_acc(truth, f) +
                       Vec2{rng.gaussian(0.02), rng.gaussian(0.02)};
        if (k < 500) small_batch.add(f, z);
        large_batch.add(f, z);
    }
    const auto s_small = small_batch.solve();
    const auto s_large = large_batch.solve();
    const auto err = [&](const BatchLeastSquaresAligner::Solution& s) {
        return std::abs(s.misalignment.roll - truth.roll) +
               std::abs(s.misalignment.pitch - truth.pitch) +
               std::abs(s.misalignment.yaw - truth.yaw);
    };
    EXPECT_LT(err(s_large), err(s_small));
    EXPECT_NEAR(rad2deg(s_large.misalignment.yaw), -2.0, 0.05);
}

TEST(BatchAligner, LevelStaticKeepsYawAtPrior) {
    const EulerAngles truth = EulerAngles::from_deg(1.0, -1.0, 4.0);
    BatchLeastSquaresAligner batch;
    const Vec3 f{0.0, 0.0, -kG};
    for (int k = 0; k < 500; ++k) batch.add(f, ideal_acc(truth, f));
    const auto sol = batch.solve();
    EXPECT_NEAR(rad2deg(sol.misalignment.roll), 1.0, 0.02);
    EXPECT_NEAR(rad2deg(sol.misalignment.pitch), -1.0, 0.02);
    // Unobservable yaw stays at the damped prior of zero.
    EXPECT_NEAR(sol.misalignment.yaw, 0.0, 1e-6);
}

TEST(BatchAligner, BiasEstimationOnRichExcitation) {
    const EulerAngles truth = EulerAngles::from_deg(0.5, 1.0, -1.0);
    const Vec2 bias{0.04, -0.02};
    BatchLeastSquaresAligner batch(/*estimate_bias=*/true);
    for (int k = 0; k < 5000; ++k) {
        const Vec3 f = rich_excitation(k);
        batch.add(f, ideal_acc(truth, f) + bias);
    }
    const auto sol = batch.solve();
    EXPECT_NEAR(sol.bias[0], 0.04, 1e-4);
    EXPECT_NEAR(sol.bias[1], -0.02, 1e-4);
    EXPECT_NEAR(rad2deg(sol.misalignment.pitch), 1.0, 0.01);
}

TEST(BatchAligner, ThrowsWithoutData) {
    const BatchLeastSquaresAligner batch;
    EXPECT_THROW((void)batch.solve(), std::domain_error);
}

TEST(BatchAligner, StepChangeProducesAveragedEstimate) {
    // The key weakness the EKF fixes: after a mid-run mount bump the batch
    // solution lands between the two truths while the EKF tracks the new
    // one. (The full comparison is bench/ablation_baseline.)
    EulerAngles truth = EulerAngles::from_deg(0.0, 1.0, 0.0);
    BatchLeastSquaresAligner batch;
    BoresightConfig cfg;
    cfg.angle_process_noise = 5e-6;
    BoresightEkf ekf(cfg);
    Rng rng(5);
    for (int k = 0; k < 8000; ++k) {
        if (k == 4000) truth.pitch = deg2rad(3.0);
        const Vec3 f = rich_excitation(k);
        const Vec2 z = ideal_acc(truth, f) +
                       Vec2{rng.gaussian(0.01), rng.gaussian(0.01)};
        batch.add(f, z);
        (void)ekf.step(f, z);
    }
    const auto sol = batch.solve();
    // Batch: stuck near the average of 1 and 3 degrees.
    EXPECT_GT(rad2deg(sol.misalignment.pitch), 1.5);
    EXPECT_LT(rad2deg(sol.misalignment.pitch), 2.5);
    // EKF: tracking the post-bump truth.
    EXPECT_NEAR(rad2deg(ekf.misalignment().pitch), 3.0, 0.3);
}

// --- AlignmentResult ---------------------------------------------------------

TEST(AlignmentReport, ErrorAndConfidence) {
    AlignmentResult r;
    r.truth = EulerAngles::from_deg(1.0, 2.0, 3.0);
    r.estimate = EulerAngles::from_deg(1.1, 1.95, 3.0);
    r.sigma3_rad = Vec3{deg2rad(0.2), deg2rad(0.2), deg2rad(0.2)};
    EXPECT_NEAR(r.error_deg(0), 0.1, 1e-9);
    EXPECT_NEAR(r.error_deg(1), -0.05, 1e-9);
    EXPECT_NEAR(r.max_error_deg(), 0.1, 1e-9);
    EXPECT_TRUE(r.within_confidence());
    r.sigma3_rad = Vec3{deg2rad(0.05), deg2rad(0.2), deg2rad(0.2)};
    EXPECT_FALSE(r.within_confidence());
}

TEST(AlignmentReport, TableFormatting) {
    AlignmentResult r;
    r.label = "static level";
    r.truth = EulerAngles::from_deg(1.0, 2.0, 3.0);
    r.estimate = EulerAngles::from_deg(1.0, 2.0, 3.0);
    const std::string header = alignment_table_header();
    const std::string row = alignment_table_row(r);
    EXPECT_NE(header.find("roll"), std::string::npos);
    EXPECT_NE(row.find("static level"), std::string::npos);
    // Fixed-width: header and row columns align on '|'.
    EXPECT_EQ(header.find('|'), row.find('|'));
}

}  // namespace
