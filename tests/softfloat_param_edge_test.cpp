#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "softfloat/softfloat.hpp"
#include "softfloat/softfloat64.hpp"

// Parameterized IEEE-754 edge-case coverage across every rounding mode and
// both precisions: NaN propagation (quiet and signaling), signed-zero
// algebra, and subnormal rounding at the underflow boundary. These are the
// cases the Sabre FPU peripheral leans on hardest and the ones a softfloat
// "optimisation" breaks first.

namespace {

namespace sf = ob::softfloat;
using sf::Context;
using sf::F32;
using sf::F64;
using sf::Round;

const Round kAllModes[] = {Round::kNearestEven, Round::kTowardZero,
                           Round::kDown, Round::kUp};

std::string mode_name(const ::testing::TestParamInfo<Round>& info) {
    switch (info.param) {
        case Round::kNearestEven: return "NearestEven";
        case Round::kTowardZero: return "TowardZero";
        case Round::kDown: return "Down";
        case Round::kUp: return "Up";
    }
    return "Unknown";
}

class RoundingModeTest : public ::testing::TestWithParam<Round> {
protected:
    [[nodiscard]] Context ctx() const { return Context{GetParam(), 0}; }
};

INSTANTIATE_TEST_SUITE_P(AllModes, RoundingModeTest,
                         ::testing::ValuesIn(kAllModes), mode_name);

// --- NaN propagation -------------------------------------------------------

TEST_P(RoundingModeTest, QuietNanPropagatesThroughArithmeticF32) {
    const F32 qnan = F32::quiet_nan();
    const F32 two = sf::from_host(2.0f);
    Context c = ctx();
    for (const F32 r : {sf::add(qnan, two, c), sf::sub(two, qnan, c),
                        sf::mul(qnan, qnan, c), sf::div(two, qnan, c),
                        sf::sqrt(qnan, c)}) {
        EXPECT_TRUE(r.is_nan());
        EXPECT_FALSE(r.is_signaling_nan()) << "result must be quiet";
    }
    // Quiet NaN in, quiet NaN out — with no invalid flag (IEEE 754 §6.2).
    EXPECT_FALSE(c.any(sf::kInvalid));
}

TEST_P(RoundingModeTest, QuietNanPropagatesThroughArithmeticF64) {
    const F64 qnan = F64::quiet_nan();
    const F64 two = sf::from_host(2.0);
    Context c = ctx();
    EXPECT_TRUE(sf::add(qnan, two, c).is_nan());
    EXPECT_TRUE(sf::sub(two, qnan, c).is_nan());
    EXPECT_TRUE(sf::mul(qnan, qnan, c).is_nan());
    EXPECT_TRUE(sf::div(two, qnan, c).is_nan());
    EXPECT_TRUE(sf::sqrt(qnan, c).is_nan());
    EXPECT_FALSE(c.any(sf::kInvalid))
        << "quiet NaN propagation must not raise invalid";
}

TEST_P(RoundingModeTest, SignalingNanRaisesInvalidF32) {
    // A signaling NaN: max exponent, MSB of fraction clear, nonzero payload.
    const F32 snan{0x7F800001u};
    ASSERT_TRUE(snan.is_signaling_nan());
    const F32 one = F32::one();

    Context c = ctx();
    const F32 r = sf::add(snan, one, c);
    EXPECT_TRUE(r.is_nan());
    EXPECT_FALSE(r.is_signaling_nan()) << "must be quieted";
    EXPECT_TRUE(c.any(sf::kInvalid));
}

TEST_P(RoundingModeTest, SignalingNanRaisesInvalidF64) {
    const F64 snan{0x7FF0000000000001ull};
    ASSERT_TRUE(snan.is_signaling_nan());

    Context c = ctx();
    const F64 r = sf::mul(snan, F64::one(), c);
    EXPECT_TRUE(r.is_nan());
    EXPECT_TRUE(c.any(sf::kInvalid));
}

TEST_P(RoundingModeTest, InvalidOperationsProduceQuietNan) {
    Context c = ctx();
    // inf - inf, 0 * inf, 0/0, inf/inf, sqrt(-1): all invalid -> qNaN.
    EXPECT_TRUE(sf::sub(F32::inf(), F32::inf(), c).is_nan());
    EXPECT_TRUE(sf::mul(F32::zero(), F32::inf(), c).is_nan());
    EXPECT_TRUE(sf::div(F32::zero(), F32::zero(), c).is_nan());
    EXPECT_TRUE(sf::div(F32::inf(), F32::inf(), c).is_nan());
    EXPECT_TRUE(sf::sqrt(sf::from_host(-1.0f), c).is_nan());
    EXPECT_TRUE(c.any(sf::kInvalid));

    Context c64 = ctx();
    EXPECT_TRUE(sf::sub(F64::inf(), F64::inf(), c64).is_nan());
    EXPECT_TRUE(sf::mul(F64::zero(), F64::inf(), c64).is_nan());
    EXPECT_TRUE(sf::div(F64::zero(), F64::zero(), c64).is_nan());
    EXPECT_TRUE(sf::sqrt(sf::from_host(-1.0), c64).is_nan());
    EXPECT_TRUE(c64.any(sf::kInvalid));
}

TEST_P(RoundingModeTest, NanComparesUnordered) {
    Context c = ctx();
    const F32 qnan = F32::quiet_nan();
    EXPECT_FALSE(sf::eq(qnan, qnan, c));
    EXPECT_FALSE(sf::lt(qnan, F32::one(), c));
    EXPECT_FALSE(sf::le(F32::one(), qnan, c));

    const F64 qnan64 = F64::quiet_nan();
    EXPECT_FALSE(sf::eq(qnan64, qnan64, c));
    EXPECT_FALSE(sf::lt(qnan64, F64::one(), c));
}

// --- Signed zero -----------------------------------------------------------

TEST_P(RoundingModeTest, SignedZeroAdditionF32) {
    Context c = ctx();
    // (+0) + (-0): +0 in every mode except round-down, where it is -0
    // (IEEE 754 §6.3).
    const F32 sum = sf::add(F32::zero(), F32::zero(true), c);
    EXPECT_TRUE(sum.is_zero());
    EXPECT_EQ(sum.sign(), GetParam() == Round::kDown);

    // (-0) + (-0) = -0 in every mode.
    const F32 nn = sf::add(F32::zero(true), F32::zero(true), c);
    EXPECT_TRUE(nn.is_zero());
    EXPECT_TRUE(nn.sign());

    // x + (-x): same exact-cancellation rule as (+0) + (-0).
    const F32 x = sf::from_host(3.25f);
    const F32 cancel = sf::add(x, sf::neg(x), c);
    EXPECT_TRUE(cancel.is_zero());
    EXPECT_EQ(cancel.sign(), GetParam() == Round::kDown);
}

TEST_P(RoundingModeTest, SignedZeroAdditionF64) {
    Context c = ctx();
    const F64 sum = sf::add(F64::zero(), F64::zero(true), c);
    EXPECT_TRUE(sum.is_zero());
    EXPECT_EQ(sum.sign(), GetParam() == Round::kDown);

    const F64 nn = sf::add(F64::zero(true), F64::zero(true), c);
    EXPECT_TRUE(nn.is_zero());
    EXPECT_TRUE(nn.sign());
}

TEST_P(RoundingModeTest, SignedZeroMultiplicationAndDivision) {
    Context c = ctx();
    // Sign of a product/quotient is the XOR of the operand signs, zeros
    // included.
    const F32 pz = F32::zero(), nz = F32::zero(true);
    const F32 two = sf::from_host(2.0f);

    EXPECT_EQ(sf::mul(nz, two, c).bits, nz.bits);
    EXPECT_EQ(sf::mul(nz, sf::neg(two), c).bits, pz.bits);
    EXPECT_EQ(sf::div(nz, two, c).bits, nz.bits);
    const F32 underflow_neg = sf::div(sf::neg(two), F32::inf(), c);
    EXPECT_TRUE(underflow_neg.is_zero());
    EXPECT_TRUE(underflow_neg.sign());

    const F64 nz64 = F64::zero(true);
    EXPECT_EQ(sf::mul(nz64, sf::from_host(2.0), c).bits, nz64.bits);
}

TEST_P(RoundingModeTest, SqrtOfNegativeZeroIsNegativeZero) {
    Context c = ctx();
    const F32 r = sf::sqrt(F32::zero(true), c);
    EXPECT_TRUE(r.is_zero());
    EXPECT_TRUE(r.sign());
    EXPECT_FALSE(c.any(sf::kInvalid)) << "sqrt(-0) is exact per IEEE §5.4.1";

    const F64 r64 = sf::sqrt(F64::zero(true), c);
    EXPECT_TRUE(r64.is_zero());
    EXPECT_TRUE(r64.sign());
}

TEST_P(RoundingModeTest, SignedZerosCompareEqual) {
    Context c = ctx();
    EXPECT_TRUE(sf::eq(F32::zero(), F32::zero(true), c));
    EXPECT_FALSE(sf::lt(F32::zero(true), F32::zero(), c));
    EXPECT_TRUE(sf::eq(F64::zero(), F64::zero(true), c));
}

// --- Subnormal rounding ----------------------------------------------------

TEST_P(RoundingModeTest, HalvedMinSubnormalRoundsByModeF32) {
    // min_subnormal / 2 is an exact tie at the underflow boundary:
    //   NearestEven -> +0 (even), TowardZero -> +0, Down -> +0, Up -> min_sub.
    const F32 min_sub{1u};
    Context c = ctx();
    const F32 r = sf::div(min_sub, sf::from_host(2.0f), c);
    if (GetParam() == Round::kUp) {
        EXPECT_EQ(r.bits, min_sub.bits);
    } else {
        EXPECT_TRUE(r.is_zero());
        EXPECT_FALSE(r.sign());
    }
    EXPECT_TRUE(c.any(sf::kInexact));
    EXPECT_TRUE(c.any(sf::kUnderflow));
}

TEST_P(RoundingModeTest, HalvedMinSubnormalRoundsByModeF64) {
    const F64 min_sub{1ull};
    Context c = ctx();
    const F64 r = sf::div(min_sub, sf::from_host(2.0), c);
    if (GetParam() == Round::kUp) {
        EXPECT_EQ(r.bits, min_sub.bits);
    } else {
        EXPECT_TRUE(r.is_zero());
        EXPECT_FALSE(r.sign());
    }
    EXPECT_TRUE(c.any(sf::kInexact));
    EXPECT_TRUE(c.any(sf::kUnderflow));
}

TEST_P(RoundingModeTest, NegativeHalvedMinSubnormalMirrorsModes) {
    // The negative tie goes the other way: Down captures it, Up releases
    // it to -0.
    const F32 neg_min_sub{0x80000001u};
    Context c = ctx();
    const F32 r = sf::div(neg_min_sub, sf::from_host(2.0f), c);
    if (GetParam() == Round::kDown) {
        EXPECT_EQ(r.bits, neg_min_sub.bits);
    } else {
        EXPECT_TRUE(r.is_zero());
        EXPECT_TRUE(r.sign());
    }
}

TEST_P(RoundingModeTest, SubnormalArithmeticIsExactWhenRepresentable) {
    // min_sub + min_sub = 2*min_sub exactly: no rounding, no flags other
    // than (possibly) underflow-before-rounding semantics — the sum is
    // exact so no inexact in any mode.
    Context c = ctx();
    const F32 min_sub{1u};
    const F32 r = sf::add(min_sub, min_sub, c);
    EXPECT_EQ(r.bits, 2u);
    EXPECT_FALSE(c.any(sf::kInexact));

    Context c64 = ctx();
    const F64 r64 = sf::add(F64{1ull}, F64{1ull}, c64);
    EXPECT_EQ(r64.bits, 2ull);
    EXPECT_FALSE(c64.any(sf::kInexact));
}

TEST_P(RoundingModeTest, SubnormalTimesTwoCrossesIntoNormalExactly) {
    // The largest subnormal times two lands exactly on the smallest normal
    // times two minus one ulp... precisely: 2 * max_subnormal =
    // 2 * (2^-126 - 2^-149) = 2^-125 - 2^-148, representable as a normal.
    Context c = ctx();
    const F32 max_sub{0x007FFFFFu};
    const F32 r = sf::mul(max_sub, sf::from_host(2.0f), c);
    EXPECT_FALSE(r.is_subnormal());
    EXPECT_FALSE(c.any(sf::kInexact));
    EXPECT_EQ(sf::to_host(r), 2.0f * sf::to_host(max_sub));
}

TEST_P(RoundingModeTest, UnderflowFlushDirectionFollowsMode) {
    // A product strictly between 0 and min_subnormal: rounds to 0 or to
    // min_subnormal depending on direction; always inexact + underflow.
    Context c = ctx();
    const F32 min_sub{1u};
    const F32 tiny = sf::mul(min_sub, sf::from_host(0.25f), c);
    EXPECT_TRUE(c.any(sf::kInexact));
    EXPECT_TRUE(c.any(sf::kUnderflow));
    if (GetParam() == Round::kUp) {
        EXPECT_EQ(tiny.bits, min_sub.bits);
    } else {
        EXPECT_TRUE(tiny.is_zero());
    }
}

}  // namespace
