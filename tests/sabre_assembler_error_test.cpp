#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sabre/assembler.hpp"
#include "sabre/cpu.hpp"
#include "sabre/isa.hpp"

// Error-path coverage for the two-pass assembler — bad mnemonics, malformed
// operands, out-of-range immediates, label mistakes — plus a label-resolution
// round-trip executed on the Sabre ISS to prove that what the assembler
// *accepts* it also encodes correctly.

namespace {

using namespace ob::sabre;

/// Assemble and return the thrown AssemblyError (fails the test if none).
AssemblyError expect_error(const char* src) {
    try {
        (void)assemble(src);
    } catch (const AssemblyError& e) {
        return e;
    }
    ADD_FAILURE() << "expected AssemblyError for:\n" << src;
    return AssemblyError(0, "no error");
}

// --- Bad mnemonics and operands --------------------------------------------

TEST(AssemblerErrors, UnknownMnemonicReportsLine) {
    const auto e = expect_error("addi r1, r0, 1\nfrobnicate r1, r2\nhalt\n");
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
}

TEST(AssemblerErrors, BadRegisterName) {
    const auto e = expect_error("add r1, r2, r16\n");
    EXPECT_EQ(e.line(), 1u);
    EXPECT_NE(std::string(e.what()).find("r16"), std::string::npos);
    (void)expect_error("add r1, rx, r2\n");
    (void)expect_error("addi q1, r0, 5\n");
}

TEST(AssemblerErrors, MissingOperands) {
    EXPECT_EQ(expect_error("add r1, r2\n").line(), 1u);   // missing rs2
    EXPECT_EQ(expect_error("addi r1, r0\n").line(), 1u);  // missing imm
    EXPECT_EQ(expect_error("jal\n").line(), 1u);          // no operands
    EXPECT_EQ(expect_error("lw r1\n").line(), 1u);
}

TEST(AssemblerErrors, MalformedMemoryOperand) {
    EXPECT_EQ(expect_error("lw r1, 4(\n").line(), 1u);
    EXPECT_EQ(expect_error("sw r1, (r2\n").line(), 1u);
    EXPECT_EQ(expect_error("lw r1, 4(r99)\n").line(), 1u);
}

// --- Out-of-range immediates ------------------------------------------------

TEST(AssemblerErrors, SignedImm18Overflow) {
    // addi takes a signed 18-bit immediate: [-2^17, 2^17).
    (void)assemble("addi r1, r0, 131071\nhalt\n");   // 2^17 - 1: fits
    (void)assemble("addi r1, r0, -131072\nhalt\n");  // -2^17: fits
    const auto hi = expect_error("addi r1, r0, 131072\nhalt\n");
    EXPECT_EQ(hi.line(), 1u);
    EXPECT_NE(std::string(hi.what()).find("imm18"), std::string::npos);
    EXPECT_EQ(expect_error("addi r1, r0, -131073\nhalt\n").line(), 1u);
}

TEST(AssemblerErrors, UnsignedImm18Overflow) {
    // Logical immediates are unsigned 18-bit: [0, 2^18).
    (void)assemble("ori r1, r0, 262143\nhalt\n");  // 2^18 - 1: fits
    EXPECT_EQ(expect_error("ori r1, r0, 262144\nhalt\n").line(), 1u);
    EXPECT_EQ(expect_error("ori r1, r0, -1\nhalt\n").line(), 1u);
    EXPECT_EQ(expect_error("andi r1, r0, -5\nhalt\n").line(), 1u);
}

TEST(AssemblerErrors, BranchOffsetOverflow) {
    // Raw numeric branch offsets share the signed 18-bit field.
    (void)assemble("beq r0, r0, 100\nhalt\n");
    EXPECT_EQ(expect_error("beq r0, r0, 131072\nhalt\n").line(), 1u);
    EXPECT_EQ(expect_error("jal r0, 2097152\nhalt\n").line(), 1u);  // 2^21
}

TEST(AssemblerErrors, LiOfAnyInt32Succeeds) {
    // li must handle the full int32 range via its lui+ori expansion.
    for (const std::int64_t v :
         {0ll, 1ll, -1ll, 131071ll, 131072ll, -131073ll, 0x7FFFFFFFll,
          -0x80000000ll}) {
        const auto p = assemble("li r1, " + std::to_string(v) + "\nhalt\n");
        SabreCpu cpu(p);
        (void)cpu.run();
        EXPECT_EQ(cpu.reg(1), static_cast<std::uint32_t>(v)) << "li " << v;
    }
}

// --- Label errors -----------------------------------------------------------

TEST(AssemblerErrors, UnresolvedLabel) {
    const auto e = expect_error("j nowhere\nhalt\n");
    EXPECT_EQ(e.line(), 1u);
    EXPECT_NE(std::string(e.what()).find("nowhere"), std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel) {
    const auto e = expect_error("loop:\n  nop\nloop:\n  halt\n");
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("loop"), std::string::npos);
}

TEST(AssemblerErrors, EmptyLabelAndBadEqu) {
    EXPECT_EQ(expect_error(":\nhalt\n").line(), 1u);
    EXPECT_EQ(expect_error(".equ ONLYNAME\nhalt\n").line(), 1u);
    EXPECT_EQ(expect_error(".equ N notanumber\nhalt\n").line(), 1u);
}

TEST(AssemblerErrors, ProgramMemoryOverflow) {
    // 8 KB of program BlockRAM = 2048 words; one more must be rejected.
    std::string src;
    for (int i = 0; i < 2049; ++i) src += "nop\n";
    const auto e = expect_error(src.c_str());
    EXPECT_NE(std::string(e.what()).find("8KB"), std::string::npos);
}

// --- Label-resolution round-trip through the CPU ----------------------------

TEST(AssemblerLabels, ForwardAndBackwardBranchesExecute) {
    // Count down from 5 with a backward branch, then take a forward branch
    // over a trap value: both directions must resolve pc-relative offsets.
    const auto p = assemble(R"(
        li   r1, 5
        li   r2, 0
      loop:
        addi r2, r2, 1
        addi r1, r1, -1
        bne  r1, r0, loop
        j    done
        li   r2, 999      ; must be jumped over
      done:
        halt
    )");
    SabreCpu cpu(p);
    (void)cpu.run();
    EXPECT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.reg(1), 0u);
    EXPECT_EQ(cpu.reg(2), 5u);
}

TEST(AssemblerLabels, SymbolsMapMatchesExecutionTargets) {
    const auto p = assemble(R"(
      start:
        nop
        call sub
        j    end
      sub:
        li   r3, 42
        ret
      end:
        halt
    )");
    // Every label resolves to its instruction index; li expands to two
    // words so `sub` sits after nop(1) + call(1) + j(1) = index 3.
    ASSERT_EQ(p.symbols.count("start"), 1u);
    ASSERT_EQ(p.symbols.count("sub"), 1u);
    ASSERT_EQ(p.symbols.count("end"), 1u);
    EXPECT_EQ(p.symbols.at("start"), 0u);
    EXPECT_EQ(p.symbols.at("sub"), 3u);
    EXPECT_EQ(p.symbols.at("end"), 6u);

    SabreCpu cpu(p);
    (void)cpu.run();
    EXPECT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.reg(3), 42u);
}

TEST(AssemblerLabels, LaLoadsLabelAddressUsableByJalr) {
    // la materializes a label's instruction index into a register; jumping
    // through it must land exactly on the labelled instruction.
    const auto p = assemble(R"(
        la   r4, target
        jalr r0, r4, 0
        li   r5, 999      ; skipped
      target:
        li   r5, 7
        halt
    )");
    SabreCpu cpu(p);
    (void)cpu.run();
    EXPECT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.reg(5), 7u);
    EXPECT_EQ(cpu.reg(4), p.symbols.at("target"));
}

TEST(AssemblerLabels, EquConstantsResolveAsImmediates) {
    const auto p = assemble(R"(
        .equ ANSWER 42
        .equ BASE   0x100
        li   r1, ANSWER
        addi r2, r0, BASE
        halt
    )");
    SabreCpu cpu(p);
    (void)cpu.run();
    EXPECT_EQ(cpu.reg(1), 42u);
    EXPECT_EQ(cpu.reg(2), 0x100u);
}

TEST(AssemblerLabels, DisassembleRoundTripsEveryEmittedWord) {
    // Each assembled word must disassemble to something re-assemblable in
    // spirit: decode(encode(x)) == x is checked word-by-word via the isa.
    const auto p = assemble(R"(
        li   r1, 123456
        add  r2, r1, r1
        beq  r2, r0, 2
        lw   r3, 4(r2)
        sw   r3, 8(r2)
        halt
    )");
    for (const auto word : p.words) {
        const auto ins = decode(word);
        EXPECT_EQ(encode(ins), word);
        EXPECT_FALSE(disassemble(word).empty());
    }
}

}  // namespace
