#include <gtest/gtest.h>

#include "math/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace ob::math;
using ob::util::Rng;

template <std::size_t R, std::size_t C>
Mat<R, C> random_matrix(Rng& rng, double scale = 1.0) {
    Mat<R, C> m;
    for (std::size_t i = 0; i < R; ++i)
        for (std::size_t j = 0; j < C; ++j) m(i, j) = rng.gaussian(scale);
    return m;
}

template <std::size_t N>
Mat<N, N> random_spd(Rng& rng) {
    const auto a = random_matrix<N, N>(rng);
    return (a * a.transposed() + Mat<N, N>::identity() * 0.5).symmetrized();
}

TEST(Matrix, IdentityMultiplication) {
    Rng rng(1);
    const auto a = random_matrix<3, 3>(rng);
    const auto i = Mat3::identity();
    EXPECT_LT(((a * i) - a).max_abs(), 1e-15);
    EXPECT_LT(((i * a) - a).max_abs(), 1e-15);
}

TEST(Matrix, InitializerListLayoutIsRowMajor) {
    const Mat<2, 3> m{1, 2, 3,
                      4, 5, 6};
    EXPECT_DOUBLE_EQ(m(0, 0), 1);
    EXPECT_DOUBLE_EQ(m(0, 2), 3);
    EXPECT_DOUBLE_EQ(m(1, 0), 4);
    EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(Matrix, InitializerListSizeMismatchThrows) {
    EXPECT_THROW((Mat<2, 2>{1, 2, 3}), std::invalid_argument);
}

TEST(Matrix, TransposeInvolution) {
    Rng rng(2);
    const auto a = random_matrix<4, 2>(rng);
    EXPECT_EQ(a.transposed().transposed(), a);
}

TEST(Matrix, MultiplicationAgainstKnown) {
    const Mat<2, 3> a{1, 2, 3,
                      4, 5, 6};
    const Mat<3, 2> b{7, 8,
                      9, 10,
                      11, 12};
    const Mat2 c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 58);
    EXPECT_DOUBLE_EQ(c(0, 1), 64);
    EXPECT_DOUBLE_EQ(c(1, 0), 139);
    EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(Matrix, TraceAndDeterminantKnown) {
    const Mat2 m{3, 1,
                 2, 4};
    EXPECT_DOUBLE_EQ(m.trace(), 7.0);
    EXPECT_NEAR(determinant(m), 10.0, 1e-12);
}

TEST(Matrix, DeterminantOfSingularIsZero) {
    const Mat2 m{1, 2,
                 2, 4};
    EXPECT_NEAR(determinant(m), 0.0, 1e-12);
}

TEST(Matrix, InverseThrowsOnSingular) {
    const Mat2 m{1, 2,
                 2, 4};
    EXPECT_THROW((void)inverse(m), std::domain_error);
}

TEST(Matrix, BlockExtractAndSet) {
    Mat<4, 4> m;
    const Mat2 sub{1, 2,
                   3, 4};
    m.set_block(1, 2, sub);
    EXPECT_DOUBLE_EQ(m(1, 2), 1);
    EXPECT_DOUBLE_EQ(m(2, 3), 4);
    EXPECT_EQ((m.block<2, 2>(1, 2)), sub);
    EXPECT_THROW((void)(m.block<2, 2>(3, 3)), std::out_of_range);
}

TEST(Matrix, SymmetrizedIsSymmetric) {
    Rng rng(3);
    const auto a = random_matrix<5, 5>(rng);
    const auto s = a.symmetrized();
    EXPECT_LT((s - s.transposed()).max_abs(), 1e-15);
}

TEST(Vector, DotCrossAndSkew) {
    const Vec3 x{1, 0, 0};
    const Vec3 y{0, 1, 0};
    const Vec3 z{0, 0, 1};
    EXPECT_DOUBLE_EQ(dot(x, y), 0.0);
    EXPECT_LT((cross(x, y) - z).max_abs(), 1e-15);
    EXPECT_LT((cross(y, z) - x).max_abs(), 1e-15);

    Rng rng(4);
    const auto a = random_matrix<3, 1>(rng);
    const auto b = random_matrix<3, 1>(rng);
    EXPECT_LT((skew(a) * b - cross(a, b)).max_abs(), 1e-14);
    // a x b is orthogonal to both operands.
    EXPECT_NEAR(dot(cross(a, b), a), 0.0, 1e-12);
    EXPECT_NEAR(dot(cross(a, b), b), 0.0, 1e-12);
}

TEST(Vector, NormalizedHasUnitNorm) {
    const Vec3 v{3, 4, 0};
    EXPECT_DOUBLE_EQ(norm(v), 5.0);
    EXPECT_NEAR(norm(normalized(v)), 1.0, 1e-15);
    EXPECT_THROW((void)normalized(Vec3{0, 0, 0}), std::domain_error);
}

TEST(Vector, OuterProductShape) {
    const Vec2 a{1, 2};
    const Vec3 b{3, 4, 5};
    const auto m = outer(a, b);
    EXPECT_DOUBLE_EQ(m(0, 0), 3);
    EXPECT_DOUBLE_EQ(m(1, 2), 10);
}

// Property sweep: inverse, determinant, Cholesky and solve across many
// random matrices of each size the fusion core uses.
class MatrixPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MatrixPropertyTest, InverseRoundTrip2) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const auto a = random_matrix<2, 2>(rng) + Mat2::identity() * 3.0;
    EXPECT_LT(((a * inverse(a)) - Mat2::identity()).max_abs(), 1e-10);
}

TEST_P(MatrixPropertyTest, InverseRoundTrip3) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
    const auto a = random_matrix<3, 3>(rng) + Mat3::identity() * 3.0;
    EXPECT_LT(((a * inverse(a)) - Mat3::identity()).max_abs(), 1e-10);
    EXPECT_LT(((inverse(a) * a) - Mat3::identity()).max_abs(), 1e-10);
}

TEST_P(MatrixPropertyTest, InverseRoundTrip5) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
    const auto a = random_matrix<5, 5>(rng) + Mat<5, 5>::identity() * 4.0;
    EXPECT_LT(((a * inverse(a)) - Mat<5, 5>::identity()).max_abs(), 1e-9);
}

TEST_P(MatrixPropertyTest, DeterminantOfProductFactors) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
    const auto a = random_matrix<3, 3>(rng);
    const auto b = random_matrix<3, 3>(rng);
    EXPECT_NEAR(determinant(a * b), determinant(a) * determinant(b), 1e-9);
}

TEST_P(MatrixPropertyTest, CholeskyReconstructs) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 4000);
    const auto a = random_spd<4>(rng);
    const auto l = cholesky(a);
    EXPECT_LT(((l * l.transposed()) - a).max_abs(), 1e-9);
    // L is lower triangular.
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = i + 1; j < 4; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
}

TEST_P(MatrixPropertyTest, CholeskyRejectsIndefinite) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
    auto a = random_spd<3>(rng);
    a(2, 2) = -1.0;  // break positive definiteness
    EXPECT_THROW((void)cholesky(a), std::domain_error);
}

TEST_P(MatrixPropertyTest, SolveSatisfiesSystem) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 6000);
    const auto a = random_matrix<4, 4>(rng) + Mat<4, 4>::identity() * 3.0;
    const auto b = random_matrix<4, 1>(rng);
    const auto x = solve(a, b);
    EXPECT_LT(((a * x) - b).max_abs(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixPropertyTest, ::testing::Range(0, 25));

}  // namespace
