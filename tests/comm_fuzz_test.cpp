#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "comm/bridge.hpp"
#include "comm/can.hpp"
#include "comm/codec.hpp"
#include "comm/slip.hpp"
#include "comm/uart.hpp"
#include "sim/scenario.hpp"
#include "sim/scenario_library.hpp"
#include "util/alloc_counter.hpp"
#include "util/rng.hpp"

// Fuzz-style round-trip properties for the byte-level protocols. All
// randomness comes from the project Rng with fixed seeds, so every "fuzz"
// case is a deterministic regression: encode(decode) identity for random
// payloads, and corrupted-byte injection that must be rejected — and must
// never crash or wedge the decoder. The fault-campaign injection paths
// (CAN burst loss, stuck sensors, serial corruption) get the same
// treatment: accounting stays consistent, surviving traffic stays intact,
// and the receive chain never touches the heap in steady state.

OB_DEFINE_COUNTING_OPERATOR_NEW

namespace {

using namespace ob;
using comm::AdxlTiming;
using comm::CanFrame;
using comm::DmuSample;

std::vector<std::uint8_t> random_payload(util::Rng& rng, std::size_t n,
                                         bool delimiter_heavy) {
    std::vector<std::uint8_t> p(n);
    for (auto& b : p) {
        if (delimiter_heavy && rng.chance(0.4)) {
            // Stress the escaping path: half the stream is END/ESC bytes.
            b = rng.chance(0.5) ? comm::slip::kEnd : comm::slip::kEsc;
        } else {
            b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
    }
    return p;
}

// --- SLIP ------------------------------------------------------------------

TEST(SlipFuzz, EmptyFramesAreSuppressed) {
    // RFC 1055: back-to-back END delimiters carry no frame.
    comm::slip::Decoder dec;
    for (const auto b : comm::slip::encode({})) {
        EXPECT_FALSE(dec.feed(b).has_value());
    }
    EXPECT_EQ(dec.malformed(), 0u);
}

TEST(SlipFuzz, RandomPayloadsRoundTrip) {
    util::Rng rng(0xC0DEC);
    for (int iter = 0; iter < 500; ++iter) {
        const auto n = static_cast<std::size_t>(rng.uniform_int(1, 64));
        const auto payload = random_payload(rng, n, iter % 2 == 0);
        const auto wire = comm::slip::encode(payload);

        comm::slip::Decoder dec;
        std::vector<std::vector<std::uint8_t>> frames;
        for (const auto b : wire) {
            if (auto f = dec.feed(b)) frames.push_back(std::move(*f));
        }
        ASSERT_EQ(frames.size(), 1u) << "iter " << iter;
        EXPECT_EQ(frames[0], payload) << "iter " << iter;
        EXPECT_EQ(dec.malformed(), 0u);
    }
}

TEST(SlipFuzz, BackToBackFramesStayDelimited) {
    util::Rng rng(0xFEED);
    comm::slip::Decoder dec;
    std::vector<std::vector<std::uint8_t>> sent;
    std::vector<std::vector<std::uint8_t>> got;
    for (int i = 0; i < 100; ++i) {
        sent.push_back(
            random_payload(rng, static_cast<std::size_t>(rng.uniform_int(1, 32)),
                           true));
        for (const auto b : comm::slip::encode(sent.back())) {
            if (auto f = dec.feed(b)) got.push_back(std::move(*f));
        }
    }
    EXPECT_EQ(got, sent);
}

TEST(SlipFuzz, CorruptedByteNeverCrashesAndResyncs) {
    util::Rng rng(0xBAD);
    std::size_t delivered_clean = 0;
    for (int iter = 0; iter < 500; ++iter) {
        const auto payload = random_payload(
            rng, static_cast<std::size_t>(rng.uniform_int(1, 32)), true);
        auto wire = comm::slip::encode(payload);
        // Corrupt one random wire byte with a random value.
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
        wire[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));

        comm::slip::Decoder dec;
        for (const auto b : wire) (void)dec.feed(b);

        // Whatever the corruption did, a pristine frame must still decode
        // afterwards: the decoder cannot be wedged.
        const auto probe = random_payload(rng, 8, false);
        std::optional<std::vector<std::uint8_t>> out;
        for (const auto b : comm::slip::encode(probe)) {
            if (auto f = dec.feed(b)) out = std::move(f);
        }
        ASSERT_TRUE(out.has_value()) << "decoder wedged at iter " << iter;
        if (*out == probe) ++delivered_clean;
    }
    // The probe frame survives in the overwhelming majority of runs (a
    // corrupted END can glue garbage onto the *first* following frame).
    EXPECT_GT(delivered_clean, 450u);
}

// --- DMU CAN codec ---------------------------------------------------------

DmuSample random_dmu(util::Rng& rng) {
    DmuSample s;
    s.seq = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    for (auto& g : s.gyro)
        g = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
    for (auto& a : s.accel)
        a = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
    return s;
}

TEST(DmuCodecFuzz, RandomSamplesRoundTrip) {
    util::Rng rng(0xD1D1);
    comm::DmuCodec codec;
    for (int iter = 0; iter < 1000; ++iter) {
        const auto sample = random_dmu(rng);
        const auto [gyro, accel] = comm::DmuCodec::encode(sample);
        EXPECT_FALSE(codec.feed(gyro, 0.0).has_value());
        const auto out = codec.feed(accel, 0.0);
        ASSERT_TRUE(out.has_value()) << "iter " << iter;
        EXPECT_TRUE(*out == sample) << "iter " << iter;
    }
    EXPECT_EQ(codec.bad_checksum(), 0u);
    EXPECT_EQ(codec.seq_mismatches(), 0u);
}

TEST(DmuCodecFuzz, SingleByteCorruptionIsAlwaysRejected) {
    // The payload carries an additive checksum: any single-byte change
    // shifts the sum, so a lone flipped byte can never be accepted as a
    // valid sample — it must be dropped and counted, never crash.
    util::Rng rng(0xDEAD);
    for (int iter = 0; iter < 1000; ++iter) {
        const auto sample = random_dmu(rng);
        auto [gyro, accel] = comm::DmuCodec::encode(sample);

        CanFrame& victim = rng.chance(0.5) ? gyro : accel;
        const auto pos =
            static_cast<std::size_t>(rng.uniform_int(0, victim.dlc - 1));
        const auto delta =
            static_cast<std::uint8_t>(rng.uniform_int(1, 255));  // never 0
        victim.data[pos] = static_cast<std::uint8_t>(victim.data[pos] ^ delta);

        comm::DmuCodec codec;
        const auto r1 = codec.feed(gyro, 0.0);
        const auto r2 = codec.feed(accel, 0.0);
        EXPECT_FALSE(r1.has_value()) << "iter " << iter;
        // The corrupted half fails its checksum and is dropped, so the
        // pair can never complete: any emitted sample is a checksum hole.
        EXPECT_FALSE(r2.has_value())
            << "corrupted frame accepted, iter " << iter;
        EXPECT_GT(codec.bad_checksum() + codec.seq_mismatches(), 0u)
            << "iter " << iter;
    }
}

TEST(DmuCodecFuzz, ForeignAndMalformedFramesAreIgnored) {
    util::Rng rng(0xF00D);
    comm::DmuCodec codec;
    for (int iter = 0; iter < 200; ++iter) {
        CanFrame junk;
        junk.id = static_cast<std::uint16_t>(rng.uniform_int(0, 0x7FF));
        junk.dlc = static_cast<std::uint8_t>(rng.uniform_int(0, 8));
        for (auto& b : junk.data)
            b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        if (junk.id == comm::DmuCodec::kGyroFrameId ||
            junk.id == comm::DmuCodec::kAccelFrameId) {
            junk.id = 0x200;  // keep this case purely-foreign
        }
        EXPECT_FALSE(codec.feed(junk, 0.0).has_value());
    }
    // A real sample still decodes after the junk storm.
    const auto sample = random_dmu(rng);
    const auto [gyro, accel] = comm::DmuCodec::encode(sample);
    (void)codec.feed(gyro, 0.0);
    const auto out = codec.feed(accel, 0.0);
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(*out == sample);
}

// --- ADXL serial packets ---------------------------------------------------

TEST(AdxlFuzz, RandomTimingsRoundTripThroughSerial) {
    util::Rng rng(0xAD71);
    const comm::AdxlConfig cfg;
    comm::AdxlDeserializer des;
    for (int iter = 0; iter < 500; ++iter) {
        // Random accelerations inside the physical band round-trip through
        // encode -> serialize -> byte-fed deserialize -> decode.
        const double ax = rng.uniform(-1.9, 1.9) * cfg.g;
        const double ay = rng.uniform(-1.9, 1.9) * cfg.g;
        const auto timing = comm::adxl_encode(
            ax, ay, static_cast<std::uint8_t>(iter & 0xFF), cfg);

        std::optional<AdxlTiming> out;
        for (const auto b : comm::adxl_serialize(timing)) {
            if (auto t = des.feed(b, 0.0)) out = *t;
        }
        ASSERT_TRUE(out.has_value()) << "iter " << iter;
        EXPECT_TRUE(*out == timing) << "iter " << iter;

        const auto [rx, ry] = comm::adxl_decode(*out, cfg);
        // Quantization: one timer tick of duty over t2 = 1/(timer_hz*t2_s)
        // duty, mapped through duty_per_g. Allow a couple of ticks.
        const double tick_mps2 =
            cfg.g / (cfg.duty_per_g * cfg.timer_hz * cfg.t2_s);
        EXPECT_NEAR(rx, ax, 2.0 * tick_mps2) << "iter " << iter;
        EXPECT_NEAR(ry, ay, 2.0 * tick_mps2) << "iter " << iter;
    }
}

TEST(AdxlFuzz, CorruptedPacketRejectedAndStreamRecovers) {
    util::Rng rng(0x5EED);
    const comm::AdxlConfig cfg;
    for (int iter = 0; iter < 500; ++iter) {
        const auto timing = comm::adxl_encode(
            rng.uniform(-15.0, 15.0), rng.uniform(-15.0, 15.0),
            static_cast<std::uint8_t>(iter & 0xFF), cfg);
        auto wire = comm::adxl_serialize(timing);
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
        const auto delta = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
        wire[pos] ^= delta;

        comm::AdxlDeserializer des;
        std::optional<AdxlTiming> out;
        for (const auto b : wire) {
            if (auto t = des.feed(b, 0.0)) out = *t;
        }
        // No single-byte corruption can survive: a flipped sync byte loses
        // framing (11 remaining bytes never complete a packet), and any
        // other flipped byte shifts the additive checksum. An accepted
        // packet here — identical or not — is a checksum/framing hole.
        EXPECT_FALSE(out.has_value())
            << "corrupted packet accepted, iter " << iter << " pos " << pos;

        // Recovery: the very next clean packet must decode (resync).
        const auto clean = comm::adxl_encode(
            1.0, -1.0, static_cast<std::uint8_t>(iter & 0xFF), cfg);
        std::optional<AdxlTiming> recovered;
        // Feed twice: the first clean packet may be consumed resyncing out
        // of the corrupted tail; the second must always emerge.
        for (int k = 0; k < 2 && !recovered; ++k) {
            for (const auto b : comm::adxl_serialize(clean)) {
                if (auto t = des.feed(b, 0.0)) recovered = *t;
            }
        }
        ASSERT_TRUE(recovered.has_value()) << "deserializer wedged, iter "
                                           << iter;
        EXPECT_TRUE(*recovered == clean);
    }
}

TEST(AdxlFuzz, PlausibilityFilterCatchesWildTimings) {
    // Implausible timings — the kind a surviving corrupted packet would
    // carry — must be flagged, while every physical encoding passes.
    util::Rng rng(0x7A57);
    const comm::AdxlConfig cfg;
    for (int iter = 0; iter < 200; ++iter) {
        const auto good = comm::adxl_encode(
            rng.uniform(-1.9, 1.9) * cfg.g, rng.uniform(-1.9, 1.9) * cfg.g,
            0, cfg);
        EXPECT_TRUE(comm::adxl_plausible(good, cfg)) << "iter " << iter;
    }
    AdxlTiming wild = comm::adxl_encode(0.0, 0.0, 0, cfg);
    wild.t1x |= 0x800000;  // flipped high bit: reads as tens of g
    EXPECT_FALSE(comm::adxl_plausible(wild, cfg));
    AdxlTiming stretched = comm::adxl_encode(0.0, 0.0, 0, cfg);
    stretched.t2 *= 3;  // PWM period far off nominal
    EXPECT_FALSE(comm::adxl_plausible(stretched, cfg));
}

// --- CAN burst loss ----------------------------------------------------------

/// Unique-id frame carrying its own index in data[0..1], so a delivery can
/// be matched back to the send regardless of what the bus did in between.
CanFrame indexed_frame(util::Rng& rng, std::uint16_t index) {
    CanFrame f;
    f.id = index;  // unique id: arbitration order is deterministic
    f.dlc = 8;
    f.data[0] = static_cast<std::uint8_t>(index >> 8);
    f.data[1] = static_cast<std::uint8_t>(index & 0xFF);
    for (std::size_t i = 2; i < 8; ++i)
        f.data[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    return f;
}

std::uint16_t frame_index(const CanFrame& f) {
    return static_cast<std::uint16_t>((f.data[0] << 8) | f.data[1]);
}

TEST(CanBurstLossFuzz, LossAccountingAndDeliveredIntegrity) {
    // Across the whole intensity range: every sent frame is either
    // delivered bit-exact or counted in frames_lost(), never both, never
    // neither — and burst loss erases, it does not corrupt or reorder.
    for (const double p : {0.0, 0.01, 0.08, 1.0}) {
        util::Rng rng(0xB0057);
        comm::CanBus bus(500000.0,
                         comm::CanFaults{.burst_probability = p,
                                         .burst_frames = 4,
                                         .seed = 0xB0057});
        std::vector<CanFrame> sent;
        std::vector<CanFrame> delivered;
        bus.on_delivery([&](const CanFrame& f, double) {
            delivered.push_back(f);
        });
        for (std::uint16_t i = 0; i < 400; ++i) {
            sent.push_back(indexed_frame(rng, i));
            bus.send(sent.back(), i * 1e-3);
        }
        bus.advance_to(1.0);

        EXPECT_EQ(delivered.size() + bus.frames_lost(), sent.size())
            << "p=" << p;
        if (p == 0.0) {
            EXPECT_EQ(bus.frames_lost(), 0u);
        }
        if (p == 1.0) {
            EXPECT_TRUE(delivered.empty());
        }
        std::uint32_t prev = 0;
        bool first = true;
        for (const auto& f : delivered) {
            const auto idx = frame_index(f);
            ASSERT_LT(idx, sent.size());
            EXPECT_EQ(f, sent[idx]) << "delivered frame corrupted, p=" << p;
            if (!first) {
                EXPECT_GT(idx, prev) << "reordered, p=" << p;
            }
            prev = idx;
            first = false;
        }
    }
}

TEST(CanBurstLossFuzz, LostFramesStillOccupyTheWire) {
    // Fault-model contract: an erased frame consumes its full transmission
    // time (a real bus still carries the error frames), so every surviving
    // frame is delivered at exactly the clean bus's timestamp even under
    // queueing pressure.
    util::Rng rng(0x0CCC);
    comm::CanBus clean;
    comm::CanBus faulted(500000.0,
                         comm::CanFaults{.burst_probability = 0.1,
                                         .burst_frames = 3,
                                         .seed = 0x0CCC});
    std::vector<double> clean_t(300, -1.0);
    clean.on_delivery([&](const CanFrame& f, double t) {
        clean_t[frame_index(f)] = t;
    });
    std::size_t survivors = 0;
    faulted.on_delivery([&](const CanFrame& f, double t) {
        ++survivors;
        EXPECT_DOUBLE_EQ(t, clean_t[frame_index(f)])
            << "frame " << frame_index(f);
    });
    // Bursts of contending frames so the queue is rarely empty.
    double t = 0.0;
    std::uint16_t index = 0;
    while (index < 300) {
        const int n = static_cast<int>(rng.uniform_int(1, 8));
        for (int i = 0; i < n && index < 300; ++i) {
            const auto f = indexed_frame(rng, index++);
            clean.send(f, t);
            faulted.send(f, t);
        }
        t += rng.uniform(0.0, 0.001);
    }
    clean.advance_to(10.0);
    faulted.advance_to(10.0);
    ASSERT_GT(survivors, 0u);
    ASSERT_GT(faulted.frames_lost(), 0u);
}

// --- stuck / frozen sensors --------------------------------------------------

TEST(StuckSensorFuzz, FrozenSensorsStayWireValid) {
    // A stuck fault freezes analog registers, not the digital back end:
    // every packet emitted during the frozen window must still be a fully
    // valid wire packet — CRC-clean CAN frames, in-sequence ADXL packets,
    // plausible timings — or the fault would be trivially detectable at
    // the transport layer instead of the fusion layer.
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    const std::uint64_t seed = sim::scenario_seed(spec.name, 7);
    sim::Scenario sc(spec.build(12.0, spec.misalignment, seed), seed);
    const sim::SensorFault fault{.start_s = 3.0, .duration_s = 4.0};
    sc.inject_imu_fault(fault);
    sc.inject_acc_fault(fault);

    comm::DmuCodec dmu_codec;
    comm::AdxlDeserializer adxl_des;
    const comm::AdxlConfig cfg;
    double t = 0.0;
    DmuSample d;
    AdxlTiming a;
    std::size_t frozen = 0, total = 0;
    while (sc.next_wire(t, d, a)) {
        ++total;
        if (fault.active(t)) ++frozen;
        // DMU: both halves encode as valid frames and round-trip through
        // one long-lived decoder (seq continuity across the freeze).
        const auto [gyro, accel] = comm::DmuCodec::encode(d);
        ASSERT_TRUE(gyro.valid());
        ASSERT_TRUE(accel.valid());
        ASSERT_FALSE(dmu_codec.feed(gyro, t).has_value());
        const auto rt = dmu_codec.feed(accel, t);
        ASSERT_TRUE(rt.has_value()) << "t=" << t;
        EXPECT_EQ(*rt, d) << "t=" << t;
        // ADXL: serial round trip plus the plausibility screen a corrupted
        // (as opposed to frozen) packet would fail.
        std::optional<AdxlTiming> out;
        for (const auto b : comm::adxl_serialize(a)) {
            if (auto v = adxl_des.feed(b, t)) out = *v;
        }
        ASSERT_TRUE(out.has_value()) << "t=" << t;
        EXPECT_TRUE(*out == a) << "t=" << t;
        EXPECT_TRUE(comm::adxl_plausible(a, cfg)) << "t=" << t;
    }
    EXPECT_EQ(dmu_codec.bad_checksum(), 0u);
    EXPECT_EQ(dmu_codec.seq_mismatches(), 0u);
    EXPECT_EQ(adxl_des.bad_checksum(), 0u);
    EXPECT_EQ(adxl_des.resyncs(), 0u);
    ASSERT_GT(frozen, 0u);
    ASSERT_GT(total, frozen);
}

// --- corruption vs the heap --------------------------------------------------

TEST(CorruptionFuzz, ReceiveChainSteadyStateNeverAllocates) {
    // The campaign's corruption faults hammer the deframer with dropped,
    // flipped and framing-errored bytes for minutes of simulated time. The
    // receive chain (UART drain -> SLIP deframe -> CAN reassembly -> DMU
    // decode, plus the ADXL deserializer) must stay allocation-free once
    // warm, no matter what the corrupted stream looks like — merged
    // frames, poisoned frames, truncated packets included.
    util::Rng rng(0xA110C);
    comm::UartLink link(115200.0,
                        comm::UartFaults{.drop_probability = 0.02,
                                         .bit_flip_probability = 0.05,
                                         .framing_error_probability = 0.02},
                        /*fault_seed=*/99);
    comm::CanSerialBridge bridge(link);
    comm::CanSerialDeframer deframer;
    comm::DmuCodec dmu_codec;
    comm::AdxlDeserializer adxl_des;
    std::array<std::uint8_t, comm::kAdxlPacketSize> adxl_buf{};
    const comm::AdxlConfig cfg_;

    std::size_t frames_out = 0, samples_out = 0, adxl_out = 0;
    const auto pump = [&](int iters, double t0) {
        double t = t0;
        for (int i = 0; i < iters; ++i) {
            // DMU leg: two CAN frames per epoch through bridge + UART.
            const auto [gyro, accel] = comm::DmuCodec::encode(
                random_dmu(rng));
            bridge.forward(gyro, t);
            bridge.forward(accel, t);
            link.drain_until(t + 0.01, [&](const comm::UartByte& b) {
                if (const auto f = deframer.feed(b)) {
                    ++frames_out;
                    if (dmu_codec.feed(*f, b.t)) ++samples_out;
                }
            });
            // ADXL leg: corrupt one byte of every third packet in place.
            const auto timing = comm::adxl_encode(
                rng.uniform(-15.0, 15.0), rng.uniform(-15.0, 15.0),
                static_cast<std::uint8_t>(i & 0xFF), cfg_);
            comm::adxl_serialize_into(timing, adxl_buf);
            if (i % 3 == 0) {
                const auto pos = static_cast<std::size_t>(
                    rng.uniform_int(0, comm::kAdxlPacketSize - 1));
                adxl_buf[pos] ^=
                    static_cast<std::uint8_t>(rng.uniform_int(1, 255));
            }
            for (const auto b : adxl_buf) {
                if (adxl_des.feed(b, t)) ++adxl_out;
            }
            t += 0.01;
        }
    };

    // Warm-up: ring buffers and SLIP scratch reach their high-water sizes.
    // Corruption can glue an arbitrary run of frames into one giant SLIP
    // frame (every END delimiter in the run flipped), so the decoder's
    // scratch is pre-grown with one worst-case frame far beyond any
    // realistic merge instead of hoping the warm-up traffic hits one.
    {
        const std::vector<std::uint8_t> big(2048, 0x55);
        for (const auto b : comm::slip::encode(big)) {
            (void)deframer.feed(comm::UartByte{.value = b, .t = 0.0});
        }
        // Likewise the send side: an all-delimiter payload is the worst
        // SLIP expansion a CAN frame can suffer, and 64 back-to-back bytes
        // exceed any two-frame epoch's peak UART occupancy.
        CanFrame worst;
        worst.id = 0x1C0;
        worst.dlc = 8;
        worst.data.fill(comm::slip::kEnd);
        bridge.forward(worst, 0.0);
        for (int i = 0; i < 64; ++i) link.send(comm::slip::kEsc, 0.0);
        link.drain_until(1.0, [&](const comm::UartByte& b) {
            (void)deframer.feed(b);
        });
    }
    pump(400, 0.0);
    const std::uint64_t before = ob::util::alloc_count();
    pump(1000, 100.0);
    EXPECT_EQ(ob::util::alloc_count() - before, 0u)
        << "corrupted-stream receive chain touched the heap";
    // The chain still does its job while being starved/corrupted.
    EXPECT_GT(frames_out, 0u);
    EXPECT_GT(samples_out, 0u);
    EXPECT_GT(adxl_out, 0u);
    EXPECT_GT(link.bytes_corrupted(), 0u);
    EXPECT_GT(link.bytes_dropped(), 0u);
    EXPECT_GT(deframer.malformed(), 0u);
}

}  // namespace
