#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "comm/can.hpp"
#include "comm/codec.hpp"
#include "comm/slip.hpp"
#include "util/rng.hpp"

// Fuzz-style round-trip properties for the byte-level protocols. All
// randomness comes from the project Rng with fixed seeds, so every "fuzz"
// case is a deterministic regression: encode(decode) identity for random
// payloads, and corrupted-byte injection that must be rejected — and must
// never crash or wedge the decoder.

namespace {

using namespace ob;
using comm::AdxlTiming;
using comm::CanFrame;
using comm::DmuSample;

std::vector<std::uint8_t> random_payload(util::Rng& rng, std::size_t n,
                                         bool delimiter_heavy) {
    std::vector<std::uint8_t> p(n);
    for (auto& b : p) {
        if (delimiter_heavy && rng.chance(0.4)) {
            // Stress the escaping path: half the stream is END/ESC bytes.
            b = rng.chance(0.5) ? comm::slip::kEnd : comm::slip::kEsc;
        } else {
            b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
    }
    return p;
}

// --- SLIP ------------------------------------------------------------------

TEST(SlipFuzz, EmptyFramesAreSuppressed) {
    // RFC 1055: back-to-back END delimiters carry no frame.
    comm::slip::Decoder dec;
    for (const auto b : comm::slip::encode({})) {
        EXPECT_FALSE(dec.feed(b).has_value());
    }
    EXPECT_EQ(dec.malformed(), 0u);
}

TEST(SlipFuzz, RandomPayloadsRoundTrip) {
    util::Rng rng(0xC0DEC);
    for (int iter = 0; iter < 500; ++iter) {
        const auto n = static_cast<std::size_t>(rng.uniform_int(1, 64));
        const auto payload = random_payload(rng, n, iter % 2 == 0);
        const auto wire = comm::slip::encode(payload);

        comm::slip::Decoder dec;
        std::vector<std::vector<std::uint8_t>> frames;
        for (const auto b : wire) {
            if (auto f = dec.feed(b)) frames.push_back(std::move(*f));
        }
        ASSERT_EQ(frames.size(), 1u) << "iter " << iter;
        EXPECT_EQ(frames[0], payload) << "iter " << iter;
        EXPECT_EQ(dec.malformed(), 0u);
    }
}

TEST(SlipFuzz, BackToBackFramesStayDelimited) {
    util::Rng rng(0xFEED);
    comm::slip::Decoder dec;
    std::vector<std::vector<std::uint8_t>> sent;
    std::vector<std::vector<std::uint8_t>> got;
    for (int i = 0; i < 100; ++i) {
        sent.push_back(
            random_payload(rng, static_cast<std::size_t>(rng.uniform_int(1, 32)),
                           true));
        for (const auto b : comm::slip::encode(sent.back())) {
            if (auto f = dec.feed(b)) got.push_back(std::move(*f));
        }
    }
    EXPECT_EQ(got, sent);
}

TEST(SlipFuzz, CorruptedByteNeverCrashesAndResyncs) {
    util::Rng rng(0xBAD);
    std::size_t delivered_clean = 0;
    for (int iter = 0; iter < 500; ++iter) {
        const auto payload = random_payload(
            rng, static_cast<std::size_t>(rng.uniform_int(1, 32)), true);
        auto wire = comm::slip::encode(payload);
        // Corrupt one random wire byte with a random value.
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
        wire[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));

        comm::slip::Decoder dec;
        for (const auto b : wire) (void)dec.feed(b);

        // Whatever the corruption did, a pristine frame must still decode
        // afterwards: the decoder cannot be wedged.
        const auto probe = random_payload(rng, 8, false);
        std::optional<std::vector<std::uint8_t>> out;
        for (const auto b : comm::slip::encode(probe)) {
            if (auto f = dec.feed(b)) out = std::move(f);
        }
        ASSERT_TRUE(out.has_value()) << "decoder wedged at iter " << iter;
        if (*out == probe) ++delivered_clean;
    }
    // The probe frame survives in the overwhelming majority of runs (a
    // corrupted END can glue garbage onto the *first* following frame).
    EXPECT_GT(delivered_clean, 450u);
}

// --- DMU CAN codec ---------------------------------------------------------

DmuSample random_dmu(util::Rng& rng) {
    DmuSample s;
    s.seq = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    for (auto& g : s.gyro)
        g = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
    for (auto& a : s.accel)
        a = static_cast<std::int16_t>(rng.uniform_int(-32768, 32767));
    return s;
}

TEST(DmuCodecFuzz, RandomSamplesRoundTrip) {
    util::Rng rng(0xD1D1);
    comm::DmuCodec codec;
    for (int iter = 0; iter < 1000; ++iter) {
        const auto sample = random_dmu(rng);
        const auto [gyro, accel] = comm::DmuCodec::encode(sample);
        EXPECT_FALSE(codec.feed(gyro, 0.0).has_value());
        const auto out = codec.feed(accel, 0.0);
        ASSERT_TRUE(out.has_value()) << "iter " << iter;
        EXPECT_TRUE(*out == sample) << "iter " << iter;
    }
    EXPECT_EQ(codec.bad_checksum(), 0u);
    EXPECT_EQ(codec.seq_mismatches(), 0u);
}

TEST(DmuCodecFuzz, SingleByteCorruptionIsAlwaysRejected) {
    // The payload carries an additive checksum: any single-byte change
    // shifts the sum, so a lone flipped byte can never be accepted as a
    // valid sample — it must be dropped and counted, never crash.
    util::Rng rng(0xDEAD);
    for (int iter = 0; iter < 1000; ++iter) {
        const auto sample = random_dmu(rng);
        auto [gyro, accel] = comm::DmuCodec::encode(sample);

        CanFrame& victim = rng.chance(0.5) ? gyro : accel;
        const auto pos =
            static_cast<std::size_t>(rng.uniform_int(0, victim.dlc - 1));
        const auto delta =
            static_cast<std::uint8_t>(rng.uniform_int(1, 255));  // never 0
        victim.data[pos] = static_cast<std::uint8_t>(victim.data[pos] ^ delta);

        comm::DmuCodec codec;
        const auto r1 = codec.feed(gyro, 0.0);
        const auto r2 = codec.feed(accel, 0.0);
        EXPECT_FALSE(r1.has_value()) << "iter " << iter;
        // The corrupted half fails its checksum and is dropped, so the
        // pair can never complete: any emitted sample is a checksum hole.
        EXPECT_FALSE(r2.has_value())
            << "corrupted frame accepted, iter " << iter;
        EXPECT_GT(codec.bad_checksum() + codec.seq_mismatches(), 0u)
            << "iter " << iter;
    }
}

TEST(DmuCodecFuzz, ForeignAndMalformedFramesAreIgnored) {
    util::Rng rng(0xF00D);
    comm::DmuCodec codec;
    for (int iter = 0; iter < 200; ++iter) {
        CanFrame junk;
        junk.id = static_cast<std::uint16_t>(rng.uniform_int(0, 0x7FF));
        junk.dlc = static_cast<std::uint8_t>(rng.uniform_int(0, 8));
        for (auto& b : junk.data)
            b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        if (junk.id == comm::DmuCodec::kGyroFrameId ||
            junk.id == comm::DmuCodec::kAccelFrameId) {
            junk.id = 0x200;  // keep this case purely-foreign
        }
        EXPECT_FALSE(codec.feed(junk, 0.0).has_value());
    }
    // A real sample still decodes after the junk storm.
    const auto sample = random_dmu(rng);
    const auto [gyro, accel] = comm::DmuCodec::encode(sample);
    (void)codec.feed(gyro, 0.0);
    const auto out = codec.feed(accel, 0.0);
    ASSERT_TRUE(out.has_value());
    EXPECT_TRUE(*out == sample);
}

// --- ADXL serial packets ---------------------------------------------------

TEST(AdxlFuzz, RandomTimingsRoundTripThroughSerial) {
    util::Rng rng(0xAD71);
    const comm::AdxlConfig cfg;
    comm::AdxlDeserializer des;
    for (int iter = 0; iter < 500; ++iter) {
        // Random accelerations inside the physical band round-trip through
        // encode -> serialize -> byte-fed deserialize -> decode.
        const double ax = rng.uniform(-1.9, 1.9) * cfg.g;
        const double ay = rng.uniform(-1.9, 1.9) * cfg.g;
        const auto timing = comm::adxl_encode(
            ax, ay, static_cast<std::uint8_t>(iter & 0xFF), cfg);

        std::optional<AdxlTiming> out;
        for (const auto b : comm::adxl_serialize(timing)) {
            if (auto t = des.feed(b, 0.0)) out = *t;
        }
        ASSERT_TRUE(out.has_value()) << "iter " << iter;
        EXPECT_TRUE(*out == timing) << "iter " << iter;

        const auto [rx, ry] = comm::adxl_decode(*out, cfg);
        // Quantization: one timer tick of duty over t2 = 1/(timer_hz*t2_s)
        // duty, mapped through duty_per_g. Allow a couple of ticks.
        const double tick_mps2 =
            cfg.g / (cfg.duty_per_g * cfg.timer_hz * cfg.t2_s);
        EXPECT_NEAR(rx, ax, 2.0 * tick_mps2) << "iter " << iter;
        EXPECT_NEAR(ry, ay, 2.0 * tick_mps2) << "iter " << iter;
    }
}

TEST(AdxlFuzz, CorruptedPacketRejectedAndStreamRecovers) {
    util::Rng rng(0x5EED);
    const comm::AdxlConfig cfg;
    for (int iter = 0; iter < 500; ++iter) {
        const auto timing = comm::adxl_encode(
            rng.uniform(-15.0, 15.0), rng.uniform(-15.0, 15.0),
            static_cast<std::uint8_t>(iter & 0xFF), cfg);
        auto wire = comm::adxl_serialize(timing);
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
        const auto delta = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
        wire[pos] ^= delta;

        comm::AdxlDeserializer des;
        std::optional<AdxlTiming> out;
        for (const auto b : wire) {
            if (auto t = des.feed(b, 0.0)) out = *t;
        }
        // No single-byte corruption can survive: a flipped sync byte loses
        // framing (11 remaining bytes never complete a packet), and any
        // other flipped byte shifts the additive checksum. An accepted
        // packet here — identical or not — is a checksum/framing hole.
        EXPECT_FALSE(out.has_value())
            << "corrupted packet accepted, iter " << iter << " pos " << pos;

        // Recovery: the very next clean packet must decode (resync).
        const auto clean = comm::adxl_encode(
            1.0, -1.0, static_cast<std::uint8_t>(iter & 0xFF), cfg);
        std::optional<AdxlTiming> recovered;
        // Feed twice: the first clean packet may be consumed resyncing out
        // of the corrupted tail; the second must always emerge.
        for (int k = 0; k < 2 && !recovered; ++k) {
            for (const auto b : comm::adxl_serialize(clean)) {
                if (auto t = des.feed(b, 0.0)) recovered = *t;
            }
        }
        ASSERT_TRUE(recovered.has_value()) << "deserializer wedged, iter "
                                           << iter;
        EXPECT_TRUE(*recovered == clean);
    }
}

TEST(AdxlFuzz, PlausibilityFilterCatchesWildTimings) {
    // Implausible timings — the kind a surviving corrupted packet would
    // carry — must be flagged, while every physical encoding passes.
    util::Rng rng(0x7A57);
    const comm::AdxlConfig cfg;
    for (int iter = 0; iter < 200; ++iter) {
        const auto good = comm::adxl_encode(
            rng.uniform(-1.9, 1.9) * cfg.g, rng.uniform(-1.9, 1.9) * cfg.g,
            0, cfg);
        EXPECT_TRUE(comm::adxl_plausible(good, cfg)) << "iter " << iter;
    }
    AdxlTiming wild = comm::adxl_encode(0.0, 0.0, 0, cfg);
    wild.t1x |= 0x800000;  // flipped high bit: reads as tens of g
    EXPECT_FALSE(comm::adxl_plausible(wild, cfg));
    AdxlTiming stretched = comm::adxl_encode(0.0, 0.0, 0, cfg);
    stretched.t2 *= 3;  // PWM period far off nominal
    EXPECT_FALSE(comm::adxl_plausible(stretched, cfg));
}

}  // namespace
