#include <gtest/gtest.h>

#include "sabre/assembler.hpp"
#include "sabre/isa.hpp"
#include "util/rng.hpp"

namespace {

using namespace ob::sabre;
using ob::util::Rng;

TEST(Isa, EncodeDecodeKnownValues) {
    const Instruction add{Op::kAdd, 1, 2, 3, 0};
    EXPECT_EQ(decode(encode(add)), add);

    const Instruction addi{Op::kAddi, 4, 5, 0, -17};
    EXPECT_EQ(decode(encode(addi)), addi);

    const Instruction lui{Op::kLui, 7, 0, 0, 0x20000};
    EXPECT_EQ(decode(encode(lui)), lui);

    const Instruction beq{Op::kBeq, 0, 2, 3, -100};
    EXPECT_EQ(decode(encode(beq)), beq);

    const Instruction jal{Op::kJal, 14, 0, 0, 12345};
    EXPECT_EQ(decode(encode(jal)), jal);

    const Instruction halt{Op::kHalt, 0, 0, 0, 0};
    EXPECT_EQ(decode(encode(halt)), halt);
}

TEST(Isa, EncodeValidatesFields) {
    EXPECT_THROW((void)encode({Op::kAdd, 16, 0, 0, 0}), std::invalid_argument);
    EXPECT_THROW((void)encode({Op::kAddi, 1, 0, 0, 1 << 18}),
                 std::invalid_argument);
    EXPECT_THROW((void)encode({Op::kAddi, 1, 0, 0, -(1 << 18)}),
                 std::invalid_argument);
    EXPECT_THROW((void)encode({Op::kOri, 1, 0, 0, -1}), std::invalid_argument)
        << "logical immediates are unsigned";
    EXPECT_THROW((void)encode({Op::kJal, 1, 0, 0, 1 << 22}),
                 std::invalid_argument);
}

TEST(Isa, DecodeRejectsUnknownOpcode) {
    EXPECT_THROW((void)decode(0x3Eu << 26), std::invalid_argument);
}

TEST(Isa, CycleModel) {
    EXPECT_EQ(base_cycles(Op::kAdd), 1u);
    EXPECT_EQ(base_cycles(Op::kLw), 2u);
    EXPECT_EQ(base_cycles(Op::kSw), 2u);
    EXPECT_EQ(base_cycles(Op::kMul), 3u);
    EXPECT_EQ(base_cycles(Op::kJal), 2u);
}

class IsaRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(IsaRoundTripTest, RandomInstructionsSurviveEncodeDecode) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 99);
    const Op all_ops[] = {Op::kAdd, Op::kSub, Op::kAnd, Op::kOr, Op::kXor,
                          Op::kSll, Op::kSrl, Op::kSra, Op::kMul, Op::kSlt,
                          Op::kSltu, Op::kAddi, Op::kAndi, Op::kOri, Op::kXori,
                          Op::kSlli, Op::kSrli, Op::kSrai, Op::kSlti, Op::kLui,
                          Op::kLw, Op::kSw, Op::kBeq, Op::kBne, Op::kBlt,
                          Op::kBge, Op::kBltu, Op::kBgeu, Op::kJal, Op::kJalr};
    for (int i = 0; i < 2000; ++i) {
        Instruction ins;
        ins.op = all_ops[rng.uniform_int(0, 29)];
        ins.rd = static_cast<std::uint8_t>(rng.uniform_int(0, 15));
        ins.rs1 = static_cast<std::uint8_t>(rng.uniform_int(0, 15));
        ins.rs2 = static_cast<std::uint8_t>(rng.uniform_int(0, 15));
        if (is_r_type(ins.op)) {
            ins.imm = 0;
        } else if (ins.op == Op::kAndi || ins.op == Op::kOri ||
                   ins.op == Op::kXori || ins.op == Op::kLui ||
                   ins.op == Op::kSlli || ins.op == Op::kSrli ||
                   ins.op == Op::kSrai) {
            ins.imm = static_cast<std::int32_t>(rng.uniform_int(0, 0x3FFFF));
        } else if (is_j_type(ins.op)) {
            ins.imm = static_cast<std::int32_t>(
                rng.uniform_int(-(1 << 21), (1 << 21) - 1));
        } else {
            ins.imm = static_cast<std::int32_t>(
                rng.uniform_int(-(1 << 17), (1 << 17) - 1));
        }
        if (is_b_type(ins.op)) ins.rd = 0;
        if (is_j_type(ins.op)) {
            ins.rs1 = 0;
            ins.rs2 = 0;
        }
        if (is_i_type(ins.op)) ins.rs2 = 0;
        const Instruction back = decode(encode(ins));
        EXPECT_EQ(back, ins) << mnemonic(ins.op);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaRoundTripTest, ::testing::Range(0, 5));

// --- Assembler -----------------------------------------------------------------

TEST(Assembler, BasicProgram) {
    const Program p = assemble(R"(
        ; simple add program
        addi r1, zero, 5
        addi r2, zero, 7
        add r3, r1, r2
        halt
    )");
    ASSERT_EQ(p.words.size(), 4u);
    EXPECT_EQ(decode(p.words[2]), (Instruction{Op::kAdd, 3, 1, 2, 0}));
}

TEST(Assembler, LabelsAndBranches) {
    const Program p = assemble(R"(
        addi r1, zero, 3
    loop:
        addi r1, r1, -1
        bne r1, zero, loop
        halt
    )");
    ASSERT_EQ(p.words.size(), 4u);
    EXPECT_EQ(p.symbols.at("loop"), 1u);
    // bne at index 2, target 1 -> offset = 1 - 3 = -2.
    EXPECT_EQ(decode(p.words[2]).imm, -2);
}

TEST(Assembler, MemoryOperandSyntax) {
    const Program p = assemble(R"(
        lw r2, 8(r3)
        sw r2, 12(sp)
        lw r4, r5, 16
    )");
    EXPECT_EQ(decode(p.words[0]), (Instruction{Op::kLw, 2, 3, 0, 8}));
    EXPECT_EQ(decode(p.words[1]),
              (Instruction{Op::kSw, 2, kStackRegister, 0, 12}));
    EXPECT_EQ(decode(p.words[2]), (Instruction{Op::kLw, 4, 5, 0, 16}));
}

TEST(Assembler, PseudoInstructions) {
    const Program p = assemble(R"(
        nop
        mov r1, r2
        li r3, 0x12345678
        li r4, 100
        j end
        call end
        ret
    end:
        halt
    )");
    // li always expands to two words; check the big-constant pair.
    const Instruction lui = decode(p.words[2]);
    const Instruction ori = decode(p.words[3]);
    EXPECT_EQ(lui.op, Op::kLui);
    EXPECT_EQ(ori.op, Op::kOri);
    EXPECT_EQ((static_cast<std::uint32_t>(lui.imm) << 14) |
                  static_cast<std::uint32_t>(ori.imm),
              0x12345678u);
    EXPECT_EQ(decode(p.words[8]).op, Op::kJalr);  // ret
    EXPECT_EQ(p.symbols.at("end"), 9u);
}

TEST(Assembler, EquConstants) {
    const Program p = assemble(R"(
        .equ BASE 0x40
        lw r1, BASE(zero)
        addi r2, zero, BASE
    )");
    EXPECT_EQ(decode(p.words[0]).imm, 0x40);
    EXPECT_EQ(decode(p.words[1]).imm, 0x40);
}

TEST(Assembler, Errors) {
    EXPECT_THROW((void)assemble("bogus r1, r2"), AssemblyError);
    EXPECT_THROW((void)assemble("add r1, r2"), AssemblyError);
    EXPECT_THROW((void)assemble("addi r1, zero, nolabel"), AssemblyError);
    EXPECT_THROW((void)assemble("x: halt\nx: halt"), AssemblyError);
    EXPECT_THROW((void)assemble("add r99, r0, r0"), AssemblyError);
    try {
        (void)assemble("nop\nbadmnemonic");
    } catch (const AssemblyError& e) {
        EXPECT_EQ(e.line(), 2u);
    }
}

TEST(Assembler, ProgramSizeLimit) {
    std::string big;
    for (std::size_t i = 0; i < kProgramWords + 1; ++i) big += "nop\n";
    EXPECT_THROW((void)assemble(big), AssemblyError);
}

TEST(Assembler, DisassembleFormats) {
    EXPECT_EQ(disassemble(encode({Op::kAdd, 1, 2, 3, 0})), "add r1, r2, r3");
    EXPECT_EQ(disassemble(encode({Op::kLw, 2, 3, 0, 8})), "lw r2, 8(r3)");
    EXPECT_EQ(disassemble(encode({Op::kBeq, 0, 1, 2, -4})), "beq r1, r2, -4");
    EXPECT_EQ(disassemble(encode({Op::kHalt, 0, 0, 0, 0})), "halt");
}

}  // namespace
