#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/scenario_library.hpp"
#include "sim/scenario_trace.hpp"
#include "system/fleet.hpp"

// Concurrency contract of the fleet runner: scheduling decides only WHICH
// thread runs a job, never what the job computes. Every batch below is
// executed serially and across several pool widths, and the results are
// compared bit for bit — estimates, covariances, residual statistics,
// transport counters, everything.

namespace {

using namespace ob;
using Processor = system::BoresightSystem::Processor;

/// Short-duration batch over the whole library (plus a couple of Sabre
/// jobs) so each comparison sweep stays fast.
std::vector<system::FleetJob> short_batch() {
    std::vector<system::FleetJob> jobs;
    for (const auto& spec : sim::ScenarioLibrary::instance().all()) {
        system::FleetJob job;
        job.scenario = spec.name;
        job.duration_s = 20.0;
        jobs.push_back(job);
    }
    // Mix in the firmware processor: its softfloat state is per-instance,
    // so it must parallelize just as cleanly.
    jobs[0].processor = Processor::kSabre;
    jobs[2].processor = Processor::kSabre;
    return jobs;
}

/// Tuning-study-shaped batch: every job carries the §11.1 calibration
/// phase, and the tuner / noise / misalignment overrides are spread across
/// the batch (including one Sabre job) so the determinism sweep covers the
/// calibrated and adaptive paths too.
std::vector<system::FleetJob> tuned_batch() {
    std::vector<system::FleetJob> jobs;
    const char* scenarios[] = {"static-level", "city-drive", "highway-drive",
                               "carpark-bump", "banked-curve"};
    for (const char* name : scenarios) {
        system::FleetJob job;
        job.scenario = name;
        job.duration_s = 20.0;
        job.calibration = system::FleetCalibration{10.0};
        jobs.push_back(job);
    }
    jobs[0].processor = Processor::kSabre;
    jobs[1].use_adaptive_tuner = true;
    jobs[1].meas_noise_mps2 = 0.003;
    jobs[2].use_adaptive_tuner = true;
    core::AdaptiveTunerConfig tuner;
    tuner.ceiling_mps2 = 0.02;
    tuner.min_samples = 100;
    jobs[2].tuner = tuner;
    jobs[3].misalignment = ob::math::EulerAngles::from_deg(4.0, -3.0, 5.0);
    jobs[4].meas_noise_mps2 = 0.0125;
    return jobs;
}

[[nodiscard]] std::uint64_t bits(double v) {
    return std::bit_cast<std::uint64_t>(v);
}

void expect_seed_bitwise_equal(const system::FleetSeedResult& a,
                               const system::FleetSeedResult& b) {
    EXPECT_EQ(a.sensor_seed, b.sensor_seed);
    EXPECT_EQ(bits(a.result.estimate.roll), bits(b.result.estimate.roll));
    EXPECT_EQ(bits(a.result.estimate.pitch), bits(b.result.estimate.pitch));
    EXPECT_EQ(bits(a.result.estimate.yaw), bits(b.result.estimate.yaw));
    EXPECT_EQ(bits(a.result.residual_rms), bits(b.result.residual_rms));
    EXPECT_EQ(bits(a.result.meas_noise), bits(b.result.meas_noise));
    EXPECT_EQ(a.final_status.updates, b.final_status.updates);
    EXPECT_EQ(a.final_status.tuner_adjustments,
              b.final_status.tuner_adjustments);
    EXPECT_EQ(a.trace.epochs, b.trace.epochs);
    EXPECT_EQ(bits(a.trace.worst_roll_err_deg),
              bits(b.trace.worst_roll_err_deg));
    EXPECT_EQ(bits(a.trace.worst_pitch_err_deg),
              bits(b.trace.worst_pitch_err_deg));
    EXPECT_EQ(bits(a.trace.worst_yaw_err_deg),
              bits(b.trace.worst_yaw_err_deg));
    EXPECT_EQ(bits(a.calibrated_bias[0]), bits(b.calibrated_bias[0]));
    EXPECT_EQ(bits(a.calibrated_bias[1]), bits(b.calibrated_bias[1]));
    EXPECT_EQ(a.within_envelope, b.within_envelope);
}

void expect_bitwise_equal(const system::FleetResult& a,
                          const system::FleetResult& b) {
    SCOPED_TRACE(a.scenario);
    ASSERT_EQ(a.scenario, b.scenario);
    ASSERT_EQ(a.processor, b.processor);
    EXPECT_EQ(bits(a.result.estimate.roll), bits(b.result.estimate.roll));
    EXPECT_EQ(bits(a.result.estimate.pitch), bits(b.result.estimate.pitch));
    EXPECT_EQ(bits(a.result.estimate.yaw), bits(b.result.estimate.yaw));
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(bits(a.result.sigma3_rad[i]), bits(b.result.sigma3_rad[i]));
    }
    EXPECT_EQ(bits(a.result.residual_rms), bits(b.result.residual_rms));
    EXPECT_EQ(bits(a.result.meas_noise), bits(b.result.meas_noise));
    EXPECT_EQ(a.final_status.updates, b.final_status.updates);
    EXPECT_EQ(a.final_status.dmu_frames_lost, b.final_status.dmu_frames_lost);
    EXPECT_EQ(a.final_status.acc_packets_lost,
              b.final_status.acc_packets_lost);
    EXPECT_EQ(bits(a.final_status.worst_transport_latency),
              bits(b.final_status.worst_transport_latency));
    EXPECT_EQ(a.final_status.tuner_adjustments, b.final_status.tuner_adjustments);
    EXPECT_EQ(bits(a.calibrated_bias[0]), bits(b.calibrated_bias[0]));
    EXPECT_EQ(bits(a.calibrated_bias[1]), bits(b.calibrated_bias[1]));
    EXPECT_EQ(bits(a.calibration_noise), bits(b.calibration_noise));
    EXPECT_EQ(a.calibration_samples, b.calibration_samples);
    EXPECT_EQ(a.trace.epochs, b.trace.epochs);
    EXPECT_EQ(a.trace.checked_points, b.trace.checked_points);
    EXPECT_EQ(bits(a.trace.worst_roll_err_deg), bits(b.trace.worst_roll_err_deg));
    EXPECT_EQ(bits(a.trace.worst_pitch_err_deg),
              bits(b.trace.worst_pitch_err_deg));
    EXPECT_EQ(bits(a.trace.worst_yaw_err_deg), bits(b.trace.worst_yaw_err_deg));
    EXPECT_EQ(a.within_envelope, b.within_envelope);
    // The Monte Carlo seed axis: every realization and the ensemble
    // reduction must be scheduling-free too.
    ASSERT_EQ(a.seeds.size(), b.seeds.size());
    for (std::size_t i = 0; i < a.seeds.size(); ++i) {
        expect_seed_bitwise_equal(a.seeds[i], b.seeds[i]);
    }
    EXPECT_EQ(a.seed_stats.seeds, b.seed_stats.seeds);
    EXPECT_EQ(a.seed_stats.within_envelope, b.seed_stats.within_envelope);
    EXPECT_EQ(bits(a.seed_stats.roll_err_deg.mean),
              bits(b.seed_stats.roll_err_deg.mean));
    EXPECT_EQ(bits(a.seed_stats.roll_err_deg.stddev),
              bits(b.seed_stats.roll_err_deg.stddev));
    EXPECT_EQ(bits(a.seed_stats.residual_rms.mean),
              bits(b.seed_stats.residual_rms.mean));
    EXPECT_EQ(bits(a.seed_stats.residual_rms.stddev),
              bits(b.seed_stats.residual_rms.stddev));
}

void expect_batches_equal(const std::vector<system::FleetResult>& a,
                          const std::vector<system::FleetResult>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        expect_bitwise_equal(a[i], b[i]);
    }
}

TEST(FleetConcurrency, SerialMatchesTwoThreadsBitwise) {
    const auto jobs = short_batch();
    const auto serial = system::FleetRunner({.threads = 1}).run(jobs);
    const auto parallel = system::FleetRunner({.threads = 2}).run(jobs);
    expect_batches_equal(serial, parallel);
}

TEST(FleetConcurrency, SerialMatchesEightThreadsBitwise) {
    const auto jobs = short_batch();
    const auto serial = system::FleetRunner({.threads = 1}).run(jobs);
    const auto parallel = system::FleetRunner({.threads = 8}).run(jobs);
    expect_batches_equal(serial, parallel);
}

TEST(FleetConcurrency, CalibratedAndTunedJobsMatchSerialBitwise) {
    // The §11.1 calibration pass and the adaptive tuner both consume RNG
    // and carry per-job state; neither may break the scheduling-free
    // contract. Compared fields include the calibration outputs and the
    // tuner adjustment count.
    const auto jobs = tuned_batch();
    const auto serial = system::FleetRunner({.threads = 1}).run(jobs);
    const auto parallel = system::FleetRunner({.threads = 8}).run(jobs);
    expect_batches_equal(serial, parallel);
    // The overrides must actually have engaged, or this test proves nothing.
    EXPECT_GT(serial[0].calibration_samples, 0u);
    EXPECT_GT(serial[2].final_status.tuner_adjustments, 0u);
}

/// Seed-axis batch: several scenarios at 4 realizations each, with the
/// calibrated/tuned/sabre paths represented, all sharing per-scenario
/// traces.
std::vector<system::FleetJob> seeded_batch() {
    std::vector<system::FleetJob> jobs;
    const char* scenarios[] = {"city-drive", "static-level", "carpark-bump"};
    for (const char* name : scenarios) {
        system::FleetJob job;
        job.scenario = name;
        job.duration_s = 20.0;
        job.seeds_per_job = 4;
        jobs.push_back(job);
    }
    jobs[0].calibration = system::FleetCalibration{10.0};
    jobs[1].processor = Processor::kSabre;
    jobs[2].use_adaptive_tuner = true;
    core::AdaptiveTunerConfig tuner;
    tuner.min_samples = 100;
    jobs[2].tuner = tuner;
    // Two jobs on the same scenario/seed: they share one trace and must
    // still realize independently.
    {
        system::FleetJob job;
        job.scenario = "city-drive";
        job.duration_s = 20.0;
        job.seeds_per_job = 2;
        job.processor = Processor::kSabre;
        jobs.push_back(job);
    }
    return jobs;
}

TEST(FleetConcurrency, MultiSeedAggregateMatchesSerialBitwise) {
    // The seed-axis contract: an N-seed job's realizations and ensemble
    // statistics are identical whether the (job, seed) work items ran on
    // one thread or eight.
    const auto jobs = seeded_batch();
    const auto serial = system::FleetRunner({.threads = 1}).run(jobs);
    const auto parallel = system::FleetRunner({.threads = 8}).run(jobs);
    expect_batches_equal(serial, parallel);
    // The ensemble must really hold distinct realizations.
    ASSERT_EQ(serial[0].seeds.size(), 4u);
    EXPECT_NE(bits(serial[0].seeds[0].result.residual_rms),
              bits(serial[0].seeds[1].result.residual_rms));
    EXPECT_GT(serial[0].seed_stats.residual_rms.stddev, 0.0);
}

TEST(FleetConcurrency, SharedTracesMatchPerRunSynthesisBitwise) {
    // share_traces=false rebuilds every realization's trace from scratch
    // (the pre-Plan/Trace/Realize cost model). Sharing is an optimization
    // only: results must be bit-for-bit the same.
    const auto jobs = seeded_batch();
    const auto shared =
        system::FleetRunner({.threads = 4, .share_traces = true}).run(jobs);
    const auto unshared =
        system::FleetRunner({.threads = 4, .share_traces = false}).run(jobs);
    expect_batches_equal(shared, unshared);
}

TEST(FleetConcurrency, SeedZeroRealizationEqualsSingleSeedJob) {
    // fleet_sub_seed(s, 0) == s: realization 0 of a Monte Carlo job IS the
    // historical single-seed run, bit for bit — which is why the golden
    // corpus needs no regeneration.
    system::FleetJob multi;
    multi.scenario = "highway-drive";
    multi.duration_s = 20.0;
    multi.seeds_per_job = 3;
    system::FleetJob single = multi;
    single.seeds_per_job = 1;

    const auto multi_r = system::run_fleet_job(multi);
    const auto single_r = system::run_fleet_job(single);
    ASSERT_EQ(multi_r.seeds.size(), 3u);
    ASSERT_EQ(single_r.seeds.size(), 1u);
    expect_seed_bitwise_equal(multi_r.seeds[0], single_r.seeds[0]);
    // And the primary fields mirror realization 0 exactly.
    EXPECT_EQ(bits(multi_r.result.estimate.roll),
              bits(single_r.result.estimate.roll));
    EXPECT_EQ(bits(multi_r.result.residual_rms),
              bits(single_r.result.residual_rms));
    EXPECT_EQ(multi_r.within_envelope, single_r.within_envelope);
}

TEST(FleetConcurrency, ScenarioTraceIsImmutableAndShareableAcrossThreads) {
    // One trace, eight concurrently realizing threads with the same seed:
    // every thread must decode the identical sensor stream, and the trace
    // buffers must be byte-identical afterwards — realization never writes
    // into the Trace layer.
    const auto& spec = sim::ScenarioLibrary::instance().at("city-drive");
    const std::uint64_t seed = sim::scenario_seed(spec.name, 2026);
    const auto trace = sim::ScenarioTrace::build(
        spec.build(20.0, spec.misalignment, seed), seed ^ 0xA5A55A5AF00DBEEFull);

    // Snapshot a digest of the trace buffers before realization.
    const auto digest = [&] {
        std::uint64_t h = 0xcbf29ce484222325ull;
        const auto fold = [&h](double v) {
            h ^= std::bit_cast<std::uint64_t>(v);
            h *= 0x100000001b3ull;
        };
        for (std::size_t i = 0; i < trace->epochs(); ++i) {
            fold(trace->t(i));
            for (std::size_t k = 0; k < 3; ++k) {
                fold(trace->imu_force(i)[k]);
                fold(trace->imu_rate(i)[k]);
                fold(trace->acc_force(i)[k]);
                fold(trace->f_body_true(i)[k]);
            }
            fold(trace->truth(i).speed);
        }
        return h;
    };
    const std::uint64_t before = digest();

    const auto realize_digest = [&] {
        sim::Scenario sc(trace, spec.misalignment, 77);
        std::uint64_t h = 0xcbf29ce484222325ull;
        while (auto s = sc.next()) {
            for (std::size_t k = 0; k < 3; ++k) {
                h ^= static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(s->dmu.accel[k]));
                h *= 0x100000001b3ull;
                h ^= static_cast<std::uint64_t>(
                    static_cast<std::uint32_t>(s->dmu.gyro[k]));
                h *= 0x100000001b3ull;
            }
            h ^= s->adxl.t1x;
            h *= 0x100000001b3ull;
            h ^= s->adxl.t1y;
            h *= 0x100000001b3ull;
        }
        return h;
    };
    const std::uint64_t reference = realize_digest();

    std::vector<std::uint64_t> hashes(8);
    std::vector<std::thread> threads;
    threads.reserve(hashes.size());
    for (std::size_t i = 0; i < hashes.size(); ++i) {
        threads.emplace_back(
            [&, i] { hashes[i] = realize_digest(); });
    }
    for (auto& th : threads) th.join();

    for (std::size_t i = 0; i < hashes.size(); ++i) {
        EXPECT_EQ(hashes[i], reference) << "thread " << i;
    }
    EXPECT_EQ(digest(), before) << "a realization mutated the shared trace";
}

TEST(FleetConcurrency, RepeatedParallelRunsAreIdentical) {
    const auto jobs = short_batch();
    const system::FleetRunner runner({.threads = 4});
    const auto first = runner.run(jobs);
    const auto second = runner.run(jobs);
    expect_batches_equal(first, second);
}

TEST(FleetConcurrency, OversubscribedBatchMatchesSerial) {
    // More scenarios than workers: jobs queue and drain as threads free up;
    // the arbitration order still must not leak into any result.
    const auto jobs = short_batch();
    ASSERT_GT(jobs.size(), 3u);
    const auto serial = system::FleetRunner({.threads = 1}).run(jobs);
    const auto packed = system::FleetRunner({.threads = 3}).run(jobs);
    expect_batches_equal(serial, packed);
}

TEST(FleetConcurrency, ResultsArriveInJobOrder) {
    auto jobs = short_batch();
    const auto results = system::FleetRunner({.threads = 4}).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(results[i].scenario, jobs[i].scenario) << "index " << i;
        EXPECT_EQ(results[i].processor, jobs[i].processor) << "index " << i;
    }
}

TEST(FleetConcurrency, BadJobFailsTheWholeBatchUpFront) {
    auto jobs = short_batch();
    jobs.push_back({});  // empty scenario name
    EXPECT_THROW((void)system::FleetRunner({.threads = 4}).run(jobs),
                 std::invalid_argument);
}

TEST(FleetConcurrency, DefaultRunnerUsesHardwareThreads) {
    const system::FleetRunner runner;
    EXPECT_GE(runner.threads(), 1u);
    const system::FleetRunner fixed({.threads = 5});
    EXPECT_EQ(fixed.threads(), 5u);
}

TEST(FleetConcurrency, FullLibraryJobsCoverTheLibraryExactlyOnce) {
    const auto jobs = system::full_library_jobs(Processor::kSabre, 11);
    const auto& lib = sim::ScenarioLibrary::instance();
    ASSERT_EQ(jobs.size(), lib.all().size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].scenario, lib.all()[i].name);
        EXPECT_EQ(jobs[i].processor, Processor::kSabre);
        EXPECT_EQ(jobs[i].base_seed, 11u);
    }
}

}  // namespace
