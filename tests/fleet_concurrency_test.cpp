#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/scenario_library.hpp"
#include "system/fleet.hpp"

// Concurrency contract of the fleet runner: scheduling decides only WHICH
// thread runs a job, never what the job computes. Every batch below is
// executed serially and across several pool widths, and the results are
// compared bit for bit — estimates, covariances, residual statistics,
// transport counters, everything.

namespace {

using namespace ob;
using Processor = system::BoresightSystem::Processor;

/// Short-duration batch over the whole library (plus a couple of Sabre
/// jobs) so each comparison sweep stays fast.
std::vector<system::FleetJob> short_batch() {
    std::vector<system::FleetJob> jobs;
    for (const auto& spec : sim::ScenarioLibrary::instance().all()) {
        system::FleetJob job;
        job.scenario = spec.name;
        job.duration_s = 20.0;
        jobs.push_back(job);
    }
    // Mix in the firmware processor: its softfloat state is per-instance,
    // so it must parallelize just as cleanly.
    jobs[0].processor = Processor::kSabre;
    jobs[2].processor = Processor::kSabre;
    return jobs;
}

/// Tuning-study-shaped batch: every job carries the §11.1 calibration
/// phase, and the tuner / noise / misalignment overrides are spread across
/// the batch (including one Sabre job) so the determinism sweep covers the
/// calibrated and adaptive paths too.
std::vector<system::FleetJob> tuned_batch() {
    std::vector<system::FleetJob> jobs;
    const char* scenarios[] = {"static-level", "city-drive", "highway-drive",
                               "carpark-bump", "banked-curve"};
    for (const char* name : scenarios) {
        system::FleetJob job;
        job.scenario = name;
        job.duration_s = 20.0;
        job.calibration = system::FleetCalibration{10.0};
        jobs.push_back(job);
    }
    jobs[0].processor = Processor::kSabre;
    jobs[1].use_adaptive_tuner = true;
    jobs[1].meas_noise_mps2 = 0.003;
    jobs[2].use_adaptive_tuner = true;
    core::AdaptiveTunerConfig tuner;
    tuner.ceiling_mps2 = 0.02;
    tuner.min_samples = 100;
    jobs[2].tuner = tuner;
    jobs[3].misalignment = ob::math::EulerAngles::from_deg(4.0, -3.0, 5.0);
    jobs[4].meas_noise_mps2 = 0.0125;
    return jobs;
}

[[nodiscard]] std::uint64_t bits(double v) {
    return std::bit_cast<std::uint64_t>(v);
}

void expect_bitwise_equal(const system::FleetResult& a,
                          const system::FleetResult& b) {
    SCOPED_TRACE(a.scenario);
    ASSERT_EQ(a.scenario, b.scenario);
    ASSERT_EQ(a.processor, b.processor);
    EXPECT_EQ(bits(a.result.estimate.roll), bits(b.result.estimate.roll));
    EXPECT_EQ(bits(a.result.estimate.pitch), bits(b.result.estimate.pitch));
    EXPECT_EQ(bits(a.result.estimate.yaw), bits(b.result.estimate.yaw));
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(bits(a.result.sigma3_rad[i]), bits(b.result.sigma3_rad[i]));
    }
    EXPECT_EQ(bits(a.result.residual_rms), bits(b.result.residual_rms));
    EXPECT_EQ(bits(a.result.meas_noise), bits(b.result.meas_noise));
    EXPECT_EQ(a.final_status.updates, b.final_status.updates);
    EXPECT_EQ(a.final_status.dmu_frames_lost, b.final_status.dmu_frames_lost);
    EXPECT_EQ(a.final_status.acc_packets_lost,
              b.final_status.acc_packets_lost);
    EXPECT_EQ(bits(a.final_status.worst_transport_latency),
              bits(b.final_status.worst_transport_latency));
    EXPECT_EQ(a.final_status.tuner_adjustments, b.final_status.tuner_adjustments);
    EXPECT_EQ(bits(a.calibrated_bias[0]), bits(b.calibrated_bias[0]));
    EXPECT_EQ(bits(a.calibrated_bias[1]), bits(b.calibrated_bias[1]));
    EXPECT_EQ(bits(a.calibration_noise), bits(b.calibration_noise));
    EXPECT_EQ(a.calibration_samples, b.calibration_samples);
    EXPECT_EQ(a.trace.epochs, b.trace.epochs);
    EXPECT_EQ(a.trace.checked_points, b.trace.checked_points);
    EXPECT_EQ(bits(a.trace.worst_roll_err_deg), bits(b.trace.worst_roll_err_deg));
    EXPECT_EQ(bits(a.trace.worst_pitch_err_deg),
              bits(b.trace.worst_pitch_err_deg));
    EXPECT_EQ(bits(a.trace.worst_yaw_err_deg), bits(b.trace.worst_yaw_err_deg));
    EXPECT_EQ(a.within_envelope, b.within_envelope);
}

void expect_batches_equal(const std::vector<system::FleetResult>& a,
                          const std::vector<system::FleetResult>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        expect_bitwise_equal(a[i], b[i]);
    }
}

TEST(FleetConcurrency, SerialMatchesTwoThreadsBitwise) {
    const auto jobs = short_batch();
    const auto serial = system::FleetRunner({.threads = 1}).run(jobs);
    const auto parallel = system::FleetRunner({.threads = 2}).run(jobs);
    expect_batches_equal(serial, parallel);
}

TEST(FleetConcurrency, SerialMatchesEightThreadsBitwise) {
    const auto jobs = short_batch();
    const auto serial = system::FleetRunner({.threads = 1}).run(jobs);
    const auto parallel = system::FleetRunner({.threads = 8}).run(jobs);
    expect_batches_equal(serial, parallel);
}

TEST(FleetConcurrency, CalibratedAndTunedJobsMatchSerialBitwise) {
    // The §11.1 calibration pass and the adaptive tuner both consume RNG
    // and carry per-job state; neither may break the scheduling-free
    // contract. Compared fields include the calibration outputs and the
    // tuner adjustment count.
    const auto jobs = tuned_batch();
    const auto serial = system::FleetRunner({.threads = 1}).run(jobs);
    const auto parallel = system::FleetRunner({.threads = 8}).run(jobs);
    expect_batches_equal(serial, parallel);
    // The overrides must actually have engaged, or this test proves nothing.
    EXPECT_GT(serial[0].calibration_samples, 0u);
    EXPECT_GT(serial[2].final_status.tuner_adjustments, 0u);
}

TEST(FleetConcurrency, RepeatedParallelRunsAreIdentical) {
    const auto jobs = short_batch();
    const system::FleetRunner runner({.threads = 4});
    const auto first = runner.run(jobs);
    const auto second = runner.run(jobs);
    expect_batches_equal(first, second);
}

TEST(FleetConcurrency, OversubscribedBatchMatchesSerial) {
    // More scenarios than workers: jobs queue and drain as threads free up;
    // the arbitration order still must not leak into any result.
    const auto jobs = short_batch();
    ASSERT_GT(jobs.size(), 3u);
    const auto serial = system::FleetRunner({.threads = 1}).run(jobs);
    const auto packed = system::FleetRunner({.threads = 3}).run(jobs);
    expect_batches_equal(serial, packed);
}

TEST(FleetConcurrency, ResultsArriveInJobOrder) {
    auto jobs = short_batch();
    const auto results = system::FleetRunner({.threads = 4}).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(results[i].scenario, jobs[i].scenario) << "index " << i;
        EXPECT_EQ(results[i].processor, jobs[i].processor) << "index " << i;
    }
}

TEST(FleetConcurrency, BadJobFailsTheWholeBatchUpFront) {
    auto jobs = short_batch();
    jobs.push_back({});  // empty scenario name
    EXPECT_THROW((void)system::FleetRunner({.threads = 4}).run(jobs),
                 std::invalid_argument);
}

TEST(FleetConcurrency, DefaultRunnerUsesHardwareThreads) {
    const system::FleetRunner runner;
    EXPECT_GE(runner.threads(), 1u);
    const system::FleetRunner fixed({.threads = 5});
    EXPECT_EQ(fixed.threads(), 5u);
}

TEST(FleetConcurrency, FullLibraryJobsCoverTheLibraryExactlyOnce) {
    const auto jobs = system::full_library_jobs(Processor::kSabre, 11);
    const auto& lib = sim::ScenarioLibrary::instance();
    ASSERT_EQ(jobs.size(), lib.all().size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].scenario, lib.all()[i].name);
        EXPECT_EQ(jobs[i].processor, Processor::kSabre);
        EXPECT_EQ(jobs[i].base_seed, 11u);
    }
}

}  // namespace
