#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "fleet_test_util.hpp"
#include "sim/scenario_library.hpp"
#include "system/fleet.hpp"
#include "util/json.hpp"

// Golden-trace regression corpus: every library scenario x processor has a
// checked-in summary CSV under tests/golden/. The comparator re-runs the
// fleet job and diffs against the corpus:
//
//   * determinism fields (epochs, updates, checked points, loss counters,
//     envelope verdict) compare EXACTLY — any drift means the RNG stream,
//     transport timing or scheduling leaked into the run;
//   * numeric fields (estimates, 3-sigma, residual RMS) compare under
//     explicit tolerances listed in kDoubleFields, tight enough that any
//     real regression trips them but robust to last-ulp libm variation
//     across toolchains. (In-process bitwise reproducibility is asserted
//     separately in fleet_concurrency_test.cpp.)
//
// Regenerate after an *intentional* behavior change with either of:
//   ./fleet_golden_test --update-golden
//   OB_UPDATE_GOLDEN=1 ctest -R FleetGolden
// and commit the diff under tests/golden/ for review.

namespace {

using namespace ob;
using testutil::FleetCase;

bool g_update_golden = false;

std::string golden_path(const FleetCase& c) {
    return std::string(OB_GOLDEN_DIR) + "/" + c.scenario + "." +
           system::processor_name(c.processor) + ".csv";
}

/// Exact fields, in CSV order.
const char* const kExactFields[] = {
    "epochs", "updates", "checked_points", "dmu_frames_lost",
    "acc_packets_lost", "within_envelope",
};

/// Tolerance fields, in CSV order after the exact block.
struct DoubleField {
    const char* name;
    double tolerance;
};
constexpr DoubleField kDoubleFields[] = {
    {"roll_rad", 1e-9},         {"pitch_rad", 1e-9},
    {"yaw_rad", 1e-9},          {"sigma3_roll_rad", 1e-9},
    {"sigma3_pitch_rad", 1e-9}, {"sigma3_yaw_rad", 1e-9},
    {"residual_rms_mps2", 1e-9}, {"meas_noise_mps2", 1e-12},
    {"worst_roll_err_deg", 1e-7}, {"worst_pitch_err_deg", 1e-7},
    {"worst_yaw_err_deg", 1e-7},
};

std::string header_line() {
    std::string h = "scenario,processor";
    for (const char* f : kExactFields) {
        h += ',';
        h += f;
    }
    for (const auto& f : kDoubleFields) {
        h += ',';
        h += f.name;
    }
    return h;
}

std::vector<std::uint64_t> exact_values(const system::FleetResult& r) {
    return {r.trace.epochs,
            r.final_status.updates,
            r.trace.checked_points,
            r.final_status.dmu_frames_lost,
            r.final_status.acc_packets_lost,
            r.within_envelope ? 1u : 0u};
}

std::vector<double> double_values(const system::FleetResult& r) {
    return {r.result.estimate.roll,
            r.result.estimate.pitch,
            r.result.estimate.yaw,
            r.result.sigma3_rad[0],
            r.result.sigma3_rad[1],
            r.result.sigma3_rad[2],
            r.result.residual_rms,
            r.result.meas_noise,
            r.trace.worst_roll_err_deg,
            r.trace.worst_pitch_err_deg,
            r.trace.worst_yaw_err_deg};
}

std::string render_golden(const FleetCase& c, const system::FleetResult& r) {
    std::string out = header_line() + "\n";
    out += c.scenario;
    out += ',';
    out += system::processor_name(c.processor);
    for (const std::uint64_t v : exact_values(r)) {
        out += ',';
        out += std::to_string(v);
    }
    for (const double v : double_values(r)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", v);  // exact round-trip
        out += ',';
        out += buf;
    }
    out += '\n';
    return out;
}

std::vector<std::string> split_csv(const std::string& line) {
    std::vector<std::string> out;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) out.push_back(field);
    return out;
}

}  // namespace

class FleetGolden : public ::testing::TestWithParam<FleetCase> {};

TEST_P(FleetGolden, MatchesCorpus) {
    const FleetCase c = GetParam();
    system::FleetJob job;
    job.scenario = c.scenario;
    job.processor = c.processor;
    const auto r = system::run_fleet_job(job);
    const std::string path = golden_path(c);

    if (g_update_golden) {
        util::write_file(path, render_golden(c, r));
        std::printf("[  GOLDEN  ] regenerated %s\n", path.c_str());
        return;
    }

    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden trace " << path
                    << "\nregenerate with: ./fleet_golden_test --update-golden";
    std::string header, row;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row));
    ASSERT_EQ(header, header_line())
        << "golden schema drift in " << path
        << " — regenerate with --update-golden and commit the diff";

    const auto fields = split_csv(row);
    const auto exact = exact_values(r);
    const auto doubles = double_values(r);
    ASSERT_EQ(fields.size(), 2 + exact.size() + doubles.size()) << path;
    EXPECT_EQ(fields[0], c.scenario);
    EXPECT_EQ(fields[1], system::processor_name(c.processor));

    std::size_t i = 2;
    for (std::size_t k = 0; k < exact.size(); ++k, ++i) {
        EXPECT_EQ(std::strtoull(fields[i].c_str(), nullptr, 10), exact[k])
            << "determinism field '" << kExactFields[k] << "' drifted in "
            << c.scenario << "/" << system::processor_name(c.processor)
            << " — the RNG stream or transport timing changed";
    }
    for (std::size_t k = 0; k < doubles.size(); ++k, ++i) {
        const double expected = std::strtod(fields[i].c_str(), nullptr);
        EXPECT_NEAR(doubles[k], expected, kDoubleFields[k].tolerance)
            << "field '" << kDoubleFields[k].name << "' drifted in "
            << c.scenario << "/" << system::processor_name(c.processor)
            << "\nif intentional, regenerate with --update-golden";
    }
}

INSTANTIATE_TEST_SUITE_P(Library, FleetGolden,
                         ::testing::ValuesIn(ob::testutil::all_library_cases()),
                         ob::testutil::fleet_case_name);

int main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--update-golden") {
            g_update_golden = true;
            for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
            --argc;
            --i;
        }
    }
    if (const char* env = std::getenv("OB_UPDATE_GOLDEN")) {
        if (env[0] == '1') g_update_golden = true;
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
