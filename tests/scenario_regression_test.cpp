#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "comm/codec.hpp"
#include "core/boresight_ekf.hpp"
#include "core/multi_aligner.hpp"
#include "math/rotation.hpp"
#include "sim/acc_model.hpp"
#include "sim/scenario.hpp"
#include "sim/trajectory.hpp"
#include "system/boresight_system.hpp"
#include "util/rng.hpp"

// Scenario-level regression harness: every paper scenario (car-park bump,
// dynamic drive, headlight leveling, multi-sensor) runs end to end through
// the full-transport BoresightSystem with a fixed RNG seed, and the whole
// estimate *trajectory* — not just the final value — is checked against an
// alignment-convergence envelope. A refactor or optimisation that perturbs
// the numerics, the transport timing, or the RNG stream shows up here even
// when every unit test still passes.

namespace {

using namespace ob;
using math::EulerAngles;
using math::rad2deg;

/// One recorded epoch of the run: time, estimate error vs truth (deg).
struct TracePoint {
    double t = 0.0;
    double roll_err_deg = 0.0;
    double pitch_err_deg = 0.0;
    double yaw_err_deg = 0.0;
};

/// Convergence envelope: after `settle_s`, every recorded point must keep
/// each axis error inside the half-width. `check_yaw` is off for level
/// scenarios where yaw is unobservable (the §11.1 lesson).
struct Envelope {
    double settle_s = 0.0;
    double roll_deg = 0.0;
    double pitch_deg = 0.0;
    double yaw_deg = 0.0;
    bool check_yaw = true;
};

/// Drive one scenario through the full-transport system, recording the
/// estimate error against the (possibly bump-shifted) live truth.
struct RunResult {
    std::vector<TracePoint> trace;
    system::BoresightSystem::Status final_status{};
};

RunResult run_system(sim::Scenario& sc, system::BoresightSystem& sys,
                     double bump_at_s = -1.0,
                     const EulerAngles& bump = {}) {
    RunResult out;
    bool bumped = false;
    while (auto s = sc.next()) {
        sys.feed(sc, *s);
        const auto st = sys.status();
        const auto truth = sc.true_misalignment();
        out.trace.push_back(
            {s->t, rad2deg(st.estimate.roll - truth.roll),
             rad2deg(st.estimate.pitch - truth.pitch),
             rad2deg(st.estimate.yaw - truth.yaw)});
        // Bump only after the current epoch is consumed and recorded, so
        // no sample generated under the old alignment is ever scored
        // against the new truth.
        if (bump_at_s >= 0.0 && !bumped && s->t >= bump_at_s) {
            sc.bump(bump);
            bumped = true;
        }
    }
    out.final_status = sys.status();
    return out;
}

/// Assert every trace point past the settle time stays inside the envelope,
/// reporting the worst excursion per axis on failure.
void expect_within_envelope(const std::vector<TracePoint>& trace,
                            const Envelope& env) {
    double worst_roll = 0.0, worst_pitch = 0.0, worst_yaw = 0.0;
    double at_roll = 0.0, at_pitch = 0.0, at_yaw = 0.0;
    std::size_t checked = 0;
    for (const auto& p : trace) {
        if (p.t < env.settle_s) continue;
        ++checked;
        if (std::abs(p.roll_err_deg) > worst_roll) {
            worst_roll = std::abs(p.roll_err_deg);
            at_roll = p.t;
        }
        if (std::abs(p.pitch_err_deg) > worst_pitch) {
            worst_pitch = std::abs(p.pitch_err_deg);
            at_pitch = p.t;
        }
        if (std::abs(p.yaw_err_deg) > worst_yaw) {
            worst_yaw = std::abs(p.yaw_err_deg);
            at_yaw = p.t;
        }
    }
    ASSERT_GT(checked, 0u) << "no trace points after settle time "
                           << env.settle_s << " s";
    EXPECT_LE(worst_roll, env.roll_deg)
        << "roll escaped the envelope at t=" << at_roll << " s";
    EXPECT_LE(worst_pitch, env.pitch_deg)
        << "pitch escaped the envelope at t=" << at_pitch << " s";
    if (env.check_yaw) {
        EXPECT_LE(worst_yaw, env.yaw_deg)
            << "yaw escaped the envelope at t=" << at_yaw << " s";
    }
}

// ---------------------------------------------------------------------------
// Car-park bump (§2): the mount is disturbed mid-run; the filter must have
// converged to the original alignment before the bump and re-converge to the
// post-bump alignment afterwards — with the estimate error trajectory
// bounded through both phases.
// ---------------------------------------------------------------------------
TEST(ScenarioRegression, CarParkBumpReconverges) {
    const EulerAngles before = EulerAngles::from_deg(0.5, 1.0, 0.0);
    const EulerAngles bump = EulerAngles::from_deg(1.5, -0.8, 0.7);
    const double bump_at = 120.0;

    auto scfg = sim::ScenarioConfig::dynamic_city(240.0, before, 31);
    sim::Scenario sc(scfg, 555);

    system::BoresightSystem::Config cfg;
    cfg.filter.meas_noise_mps2 = 0.02;
    cfg.filter.angle_process_noise = 2e-6;  // random walk tracks bumps
    system::BoresightSystem sys(cfg);

    const auto run = run_system(sc, sys, bump_at, bump);

    // Pre-bump envelope: converged to the original alignment.
    std::vector<TracePoint> pre, post;
    for (const auto& p : run.trace) {
        (p.t < bump_at ? pre : post).push_back(p);
    }
    expect_within_envelope(pre, {.settle_s = 60.0,
                                 .roll_deg = 0.5,
                                 .pitch_deg = 0.5,
                                 .yaw_deg = 1.0});
    // Post-bump envelope: re-converged to the *new* alignment. The settle
    // window restarts at the bump.
    expect_within_envelope(post, {.settle_s = bump_at + 60.0,
                                  .roll_deg = 0.5,
                                  .pitch_deg = 0.5,
                                  .yaw_deg = 1.0});

    // The transport stayed healthy throughout.
    EXPECT_GT(run.final_status.updates, 20000u);
    EXPECT_EQ(run.final_status.dmu_frames_lost, 0u);
    EXPECT_EQ(run.final_status.acc_packets_lost, 0u);
}

// ---------------------------------------------------------------------------
// Dynamic drive (§11.2): city and highway profiles, default instrument
// errors, full transport. The drive's excitation makes all three axes
// observable; the envelope covers the whole post-settle trajectory.
// ---------------------------------------------------------------------------
TEST(ScenarioRegression, DynamicCityDriveConverges) {
    const EulerAngles truth = EulerAngles::from_deg(1.0, -2.0, 1.5);
    auto scfg = sim::ScenarioConfig::dynamic_city(180.0, truth, 41);
    sim::Scenario sc(scfg, 99);

    system::BoresightSystem::Config cfg;
    cfg.filter.meas_noise_mps2 = 0.02;
    system::BoresightSystem sys(cfg);

    const auto run = run_system(sc, sys);
    expect_within_envelope(run.trace, {.settle_s = 90.0,
                                       .roll_deg = 0.5,
                                       .pitch_deg = 0.5,
                                       .yaw_deg = 1.0});
    EXPECT_GT(run.final_status.updates, 15000u);
}

TEST(ScenarioRegression, DynamicHighwayDriveConverges) {
    const EulerAngles truth = EulerAngles::from_deg(-0.8, 1.2, -1.0);
    auto scfg = sim::ScenarioConfig::dynamic_highway(180.0, truth, 43);
    sim::Scenario sc(scfg, 101);

    system::BoresightSystem::Config cfg;
    cfg.filter.meas_noise_mps2 = 0.02;
    system::BoresightSystem sys(cfg);

    const auto run = run_system(sc, sys);
    expect_within_envelope(run.trace, {.settle_s = 90.0,
                                       .roll_deg = 0.5,
                                       .pitch_deg = 0.5,
                                       .yaw_deg = 1.2});
    EXPECT_GT(run.final_status.updates, 15000u);
}

// ---------------------------------------------------------------------------
// Headlight leveling (§12): a lamp-pod accelerometer vs the vehicle IMU.
// The estimate must land well inside the ~0.57 deg (1%) regulatory aim
// band and stay there, while the vehicle just drives.
// ---------------------------------------------------------------------------
TEST(ScenarioRegression, HeadlightPodErrorWithinAimBand) {
    const EulerAngles pod_error = EulerAngles::from_deg(0.2, -0.9, 0.5);
    const double aim_limit_deg = 0.57;

    auto scfg = sim::ScenarioConfig::dynamic_city(180.0, pod_error, 41);
    scfg.acc_errors.bias_sigma = 0.0;  // pod sensor factory-calibrated
    scfg.imu_errors.accel_bias_sigma = 0.0;
    sim::Scenario sc(scfg, 99);

    system::BoresightSystem::Config cfg;
    cfg.filter.meas_noise_mps2 = 0.02;
    system::BoresightSystem sys(cfg);

    const auto run = run_system(sc, sys);
    // The estimate error must sit well inside the aim band so a re-level
    // command based on it cannot itself violate the regulation.
    expect_within_envelope(run.trace, {.settle_s = 90.0,
                                       .roll_deg = 0.4,
                                       .pitch_deg = 0.5 * aim_limit_deg,
                                       .yaw_deg = 1.0});

    // And the knocked pod is *detected*: the estimated pitch error exceeds
    // both its own 3-sigma and half the aim band before the run ends.
    const auto st = run.final_status;
    const double pitch = std::abs(rad2deg(st.estimate.pitch));
    const double s3 = rad2deg(st.sigma3[1]);
    EXPECT_GT(pitch, s3);
    EXPECT_GT(pitch, 0.5 * aim_limit_deg);
}

// ---------------------------------------------------------------------------
// Multi-sensor (§12 concluding extension): three instrumented sensors
// aligned against the common IMU at once; per-sensor and mutual (relative)
// alignments must converge.
// ---------------------------------------------------------------------------
TEST(ScenarioRegression, MultiSensorMutualAlignment) {
    const auto profile = sim::DriveProfile::city(180.0, /*seed=*/77);

    struct SensorSpec {
        const char* name;
        EulerAngles truth;
    };
    const std::vector<SensorSpec> specs = {
        {"video", EulerAngles::from_deg(1.0, -2.0, 1.5)},
        {"lidar", EulerAngles::from_deg(-0.5, 0.8, -1.0)},
        {"radar", EulerAngles::from_deg(2.2, 0.3, -0.7)},
    };

    util::Rng rng(2026);
    sim::AccErrorConfig acc_err;
    acc_err.bias_sigma = 0.0;  // instruments pre-calibrated per §11.1
    const sim::VibrationConfig vib;

    std::vector<sim::AccModel> models;
    core::MultiSensorAligner aligner;
    core::BoresightConfig fcfg;
    fcfg.meas_noise_mps2 = 0.02;
    for (const auto& s : specs) {
        models.emplace_back(s.truth, acc_err, vib, rng.fork());
        (void)aligner.add_sensor(s.name, fcfg);
    }

    const double dt = 0.01;
    for (double t = 0.0; t <= profile.duration(); t += dt) {
        const auto state = profile.state_at(t);
        const math::Vec3 f_body = state.specific_force_body();
        std::vector<std::optional<math::Vec2>> readings;
        readings.reserve(models.size());
        for (auto& m : models) {
            const auto timing = m.sample(f_body, state.omega_body,
                                         math::Vec3{}, t, dt, state.speed);
            const auto [ax, ay] = comm::adxl_decode(timing, m.adxl_config());
            readings.emplace_back(math::Vec2{ax, ay});
        }
        aligner.step(f_body, readings);
    }

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto est = aligner.misalignment(i);
        EXPECT_NEAR(rad2deg(est.roll), rad2deg(specs[i].truth.roll), 0.4)
            << specs[i].name;
        EXPECT_NEAR(rad2deg(est.pitch), rad2deg(specs[i].truth.pitch), 0.4)
            << specs[i].name;
        EXPECT_NEAR(rad2deg(est.yaw), rad2deg(specs[i].truth.yaw), 0.8)
            << specs[i].name;
    }

    // Mutual alignment video->lidar against the truth composition — the
    // quantity cross-sensor fusion actually consumes.
    const auto rel = aligner.relative_alignment(0, 1);
    const auto truth_rel = math::euler_from_dcm(
        math::dcm_from_euler(specs[1].truth) *
        math::dcm_from_euler(specs[0].truth).transposed());
    EXPECT_NEAR(rad2deg(rel.roll), rad2deg(truth_rel.roll), 0.6);
    EXPECT_NEAR(rad2deg(rel.pitch), rad2deg(truth_rel.pitch), 0.6);
    EXPECT_NEAR(rad2deg(rel.yaw), rad2deg(truth_rel.yaw), 1.2);

    // Confidence must be finite and consistent with the achieved error.
    const auto rel_s3 = aligner.relative_sigma3(0, 1);
    for (std::size_t axis = 0; axis < 3; ++axis) {
        EXPECT_GT(rel_s3[axis], 0.0);
        EXPECT_LT(rad2deg(rel_s3[axis]), 5.0);
    }
}

// ---------------------------------------------------------------------------
// Determinism: the entire stack — trajectory synthesis, sensor models,
// transport, fusion — is seeded, so two identical runs must agree bit for
// bit. This is what makes every envelope above a *regression* check rather
// than a statistical one.
// ---------------------------------------------------------------------------
TEST(ScenarioRegression, RunsAreBitwiseDeterministic) {
    const EulerAngles truth = EulerAngles::from_deg(1.0, -1.5, 2.0);

    auto run_once = [&](system::BoresightSystem::Status& st) {
        auto scfg = sim::ScenarioConfig::dynamic_city(60.0, truth, 7);
        sim::Scenario sc(scfg, 11);
        system::BoresightSystem::Config cfg;
        cfg.filter.meas_noise_mps2 = 0.02;
        system::BoresightSystem sys(cfg);
        while (auto s = sc.next()) sys.feed(sc, *s);
        st = sys.status();
    };

    system::BoresightSystem::Status a{}, b{};
    run_once(a);
    run_once(b);

    EXPECT_EQ(a.updates, b.updates);
    // Bitwise equality, not EXPECT_NEAR: any drift means hidden state.
    EXPECT_EQ(a.estimate.roll, b.estimate.roll);
    EXPECT_EQ(a.estimate.pitch, b.estimate.pitch);
    EXPECT_EQ(a.estimate.yaw, b.estimate.yaw);
    EXPECT_EQ(a.sigma3[0], b.sigma3[0]);
    EXPECT_EQ(a.sigma3[1], b.sigma3[1]);
    EXPECT_EQ(a.sigma3[2], b.sigma3[2]);
}

TEST(ScenarioRegression, ScenarioStreamIsSeedStable) {
    // The raw sensor stream itself is reproducible: same config + seed =>
    // identical wire bytes. A different seed must diverge.
    const EulerAngles truth = EulerAngles::from_deg(0.5, 0.5, 0.0);
    auto scfg = sim::ScenarioConfig::dynamic_city(5.0, truth, 3);

    sim::Scenario a(scfg, 21), b(scfg, 21), c(scfg, 22);
    bool diverged = false;
    for (int i = 0; i < 500; ++i) {
        auto sa = a.next(), sb = b.next(), sc_ = c.next();
        ASSERT_TRUE(sa && sb && sc_);
        EXPECT_TRUE(sa->dmu == sb->dmu) << "step " << i;
        EXPECT_TRUE(sa->adxl == sb->adxl) << "step " << i;
        if (!(sa->dmu == sc_->dmu)) diverged = true;
    }
    EXPECT_TRUE(diverged) << "different sensor seeds produced identical noise";
}

}  // namespace
