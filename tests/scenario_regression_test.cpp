#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "comm/codec.hpp"
#include "core/boresight_ekf.hpp"
#include "core/multi_aligner.hpp"
#include "fleet_test_util.hpp"
#include "math/rotation.hpp"
#include "sim/acc_model.hpp"
#include "sim/scenario.hpp"
#include "sim/scenario_library.hpp"
#include "sim/trajectory.hpp"
#include "system/fleet.hpp"
#include "util/rng.hpp"

// Scenario-level regression harness: the paper's scenarios (car-park bump,
// dynamic drive, headlight leveling, multi-sensor) run end to end through
// the full-transport BoresightSystem with fixed RNG seeds, and the whole
// estimate *trajectory* — not just the final value — is checked against the
// library's alignment-convergence envelope. A refactor or optimisation that
// perturbs the numerics, the transport timing, or the RNG stream shows up
// here even when every unit test still passes.
//
// The scenario definitions, filter tunings and envelopes live in
// sim::ScenarioLibrary; this file drives them through run_fleet_job, the
// same path the fleet regression and golden suites use. The full
// library x processor sweep lives in fleet_regression_test.cpp; the four
// runs here deliberately repeat its native-mode cases to layer the
// paper-narrative assertions (post-bump truth, aim-band detection,
// transport-health counters) on top of the shared envelope check.

namespace {

using namespace ob;
using math::EulerAngles;
using math::rad2deg;
using testutil::expect_inside_envelope;

// ---------------------------------------------------------------------------
// Car-park bump (§2): the mount is disturbed mid-run; the filter must have
// converged to the original alignment before the bump and re-converge to the
// post-bump alignment afterwards — with the estimate error trajectory
// bounded through both phases (both windows are inside run_fleet_job's
// envelope check; the post-bump settle window restarts at the bump).
// ---------------------------------------------------------------------------
TEST(ScenarioRegression, CarParkBumpReconverges) {
    system::FleetJob job;
    job.scenario = "carpark-bump";
    const auto r = system::run_fleet_job(job);

    expect_inside_envelope(r);

    // The final truth is the *post-bump* alignment: the spec's injected
    // misalignment plus the knock.
    const auto& spec = sim::ScenarioLibrary::instance().at("carpark-bump");
    ASSERT_TRUE(spec.bump.enabled());
    EXPECT_NEAR(r.result.truth.roll,
                spec.misalignment.roll + spec.bump.delta.roll, 1e-12);
    EXPECT_NEAR(r.result.truth.pitch,
                spec.misalignment.pitch + spec.bump.delta.pitch, 1e-12);

    // The transport stayed healthy throughout.
    EXPECT_GT(r.final_status.updates, 20000u);
    EXPECT_EQ(r.final_status.dmu_frames_lost, 0u);
    EXPECT_EQ(r.final_status.acc_packets_lost, 0u);
}

// ---------------------------------------------------------------------------
// Dynamic drive (§11.2): city and highway profiles, default instrument
// errors, full transport. The drive's excitation makes all three axes
// observable; the envelope covers the whole post-settle trajectory.
// ---------------------------------------------------------------------------
TEST(ScenarioRegression, DynamicCityDriveConverges) {
    system::FleetJob job;
    job.scenario = "city-drive";
    const auto r = system::run_fleet_job(job);
    expect_inside_envelope(r);
    EXPECT_GT(r.final_status.updates, 15000u);
}

TEST(ScenarioRegression, DynamicHighwayDriveConverges) {
    system::FleetJob job;
    job.scenario = "highway-drive";
    const auto r = system::run_fleet_job(job);
    expect_inside_envelope(r);
    EXPECT_GT(r.final_status.updates, 15000u);
}

// ---------------------------------------------------------------------------
// Headlight leveling (§12): a lamp-pod accelerometer vs the vehicle IMU.
// The estimate must land well inside the ~0.57 deg (1%) regulatory aim
// band and stay there, while the vehicle just drives.
// ---------------------------------------------------------------------------
TEST(ScenarioRegression, HeadlightPodErrorWithinAimBand) {
    const double aim_limit_deg = 0.57;

    system::FleetJob job;
    job.scenario = "headlight-leveling";
    const auto r = system::run_fleet_job(job);

    // The library's pitch envelope is half the aim band, so a re-level
    // command based on the estimate cannot itself violate the regulation —
    // in Sabre mode too: the regulatory bound must not be relaxed by the
    // fixed-point envelope scale.
    const auto& spec = sim::ScenarioLibrary::instance().at("headlight-leveling");
    EXPECT_LE(spec.envelope.pitch_deg, 0.5 * aim_limit_deg);
    EXPECT_LE(spec.envelope.pitch_deg * spec.sabre_envelope_scale,
              0.5 * aim_limit_deg);
    expect_inside_envelope(r);

    // And the knocked pod is *detected*: the estimated pitch error exceeds
    // both its own 3-sigma and half the aim band before the run ends.
    const double pitch = std::abs(rad2deg(r.result.estimate.pitch));
    const double s3 = rad2deg(r.result.sigma3_rad[1]);
    EXPECT_GT(pitch, s3);
    EXPECT_GT(pitch, 0.5 * aim_limit_deg);
}

// ---------------------------------------------------------------------------
// Multi-sensor (§12 concluding extension): three instrumented sensors
// aligned against the common IMU at once; per-sensor and mutual (relative)
// alignments must converge.
// ---------------------------------------------------------------------------
TEST(ScenarioRegression, MultiSensorMutualAlignment) {
    const auto profile = sim::DriveProfile::city(180.0, /*seed=*/77);

    struct SensorSpec {
        const char* name;
        EulerAngles truth;
    };
    const std::vector<SensorSpec> specs = {
        {"video", EulerAngles::from_deg(1.0, -2.0, 1.5)},
        {"lidar", EulerAngles::from_deg(-0.5, 0.8, -1.0)},
        {"radar", EulerAngles::from_deg(2.2, 0.3, -0.7)},
    };

    util::Rng rng(2026);
    sim::AccErrorConfig acc_err;
    acc_err.bias_sigma = 0.0;  // instruments pre-calibrated per §11.1
    const sim::VibrationConfig vib;

    std::vector<sim::AccModel> models;
    core::MultiSensorAligner aligner;
    core::BoresightConfig fcfg;
    fcfg.meas_noise_mps2 = 0.02;
    for (const auto& s : specs) {
        models.emplace_back(s.truth, acc_err, vib, rng.fork());
        (void)aligner.add_sensor(s.name, fcfg);
    }

    const double dt = 0.01;
    for (double t = 0.0; t <= profile.duration(); t += dt) {
        const auto state = profile.state_at(t);
        const math::Vec3 f_body = state.specific_force_body();
        std::vector<std::optional<math::Vec2>> readings;
        readings.reserve(models.size());
        for (auto& m : models) {
            const auto timing = m.sample(f_body, state.omega_body,
                                         math::Vec3{}, t, dt, state.speed);
            const auto [ax, ay] = comm::adxl_decode(timing, m.adxl_config());
            readings.emplace_back(math::Vec2{ax, ay});
        }
        aligner.step(f_body, readings);
    }

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto est = aligner.misalignment(i);
        EXPECT_NEAR(rad2deg(est.roll), rad2deg(specs[i].truth.roll), 0.4)
            << specs[i].name;
        EXPECT_NEAR(rad2deg(est.pitch), rad2deg(specs[i].truth.pitch), 0.4)
            << specs[i].name;
        EXPECT_NEAR(rad2deg(est.yaw), rad2deg(specs[i].truth.yaw), 0.8)
            << specs[i].name;
    }

    // Mutual alignment video->lidar against the truth composition — the
    // quantity cross-sensor fusion actually consumes.
    const auto rel = aligner.relative_alignment(0, 1);
    const auto truth_rel = math::euler_from_dcm(
        math::dcm_from_euler(specs[1].truth) *
        math::dcm_from_euler(specs[0].truth).transposed());
    EXPECT_NEAR(rad2deg(rel.roll), rad2deg(truth_rel.roll), 0.6);
    EXPECT_NEAR(rad2deg(rel.pitch), rad2deg(truth_rel.pitch), 0.6);
    EXPECT_NEAR(rad2deg(rel.yaw), rad2deg(truth_rel.yaw), 1.2);

    // Confidence must be finite and consistent with the achieved error.
    const auto rel_s3 = aligner.relative_sigma3(0, 1);
    for (std::size_t axis = 0; axis < 3; ++axis) {
        EXPECT_GT(rel_s3[axis], 0.0);
        EXPECT_LT(rad2deg(rel_s3[axis]), 5.0);
    }
}

// ---------------------------------------------------------------------------
// Determinism: the entire stack — trajectory synthesis, sensor models,
// transport, fusion — is seeded, so two identical fleet jobs must agree bit
// for bit. This is what makes every envelope above a *regression* check
// rather than a statistical one, and what the fleet runner's serial-vs-
// parallel guarantee rests on.
// ---------------------------------------------------------------------------
TEST(ScenarioRegression, FleetJobsAreBitwiseDeterministic) {
    system::FleetJob job;
    job.scenario = "city-drive";
    job.duration_s = 60.0;

    const auto a = system::run_fleet_job(job);
    const auto b = system::run_fleet_job(job);

    EXPECT_EQ(a.final_status.updates, b.final_status.updates);
    // Bitwise equality, not EXPECT_NEAR: any drift means hidden state.
    const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
    EXPECT_EQ(bits(a.result.estimate.roll), bits(b.result.estimate.roll));
    EXPECT_EQ(bits(a.result.estimate.pitch), bits(b.result.estimate.pitch));
    EXPECT_EQ(bits(a.result.estimate.yaw), bits(b.result.estimate.yaw));
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(bits(a.result.sigma3_rad[i]), bits(b.result.sigma3_rad[i]));
    }
    EXPECT_EQ(bits(a.result.residual_rms), bits(b.result.residual_rms));
}

TEST(ScenarioRegression, ScenarioStreamIsSeedStable) {
    // The raw sensor stream itself is reproducible: same config + seed =>
    // identical wire bytes. A different seed must diverge.
    const EulerAngles truth = EulerAngles::from_deg(0.5, 0.5, 0.0);
    auto scfg = sim::ScenarioConfig::dynamic_city(5.0, truth, 3);

    sim::Scenario a(scfg, 21), b(scfg, 21), c(scfg, 22);
    bool diverged = false;
    for (int i = 0; i < 500; ++i) {
        auto sa = a.next(), sb = b.next(), sc_ = c.next();
        ASSERT_TRUE(sa && sb && sc_);
        EXPECT_TRUE(sa->dmu == sb->dmu) << "step " << i;
        EXPECT_TRUE(sa->adxl == sb->adxl) << "step " << i;
        if (!(sa->dmu == sc_->dmu)) diverged = true;
    }
    EXPECT_TRUE(diverged) << "different sensor seeds produced identical noise";
}

}  // namespace
