// fleet_serve wire-protocol and daemon contract (fleet_protocol.hpp,
// fleet_serve.hpp, fleet_client.hpp; normative spec in docs/PROTOCOL.md):
// payload codecs round-trip at their pinned sizes, framing rejects
// corruption, the handshake assigns sessions, streamed results are bitwise
// the local run of the same expansion, error paths answer with the right
// code, concurrent clients are served, and shutdown is clean.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "system/fleet.hpp"
#include "system/fleet_client.hpp"
#include "system/fleet_protocol.hpp"
#include "system/fleet_serve.hpp"

namespace {

using namespace ob;

// --- payload codecs ------------------------------------------------------

TEST(ServeProtocol, FleetRequestRoundTripsAtPinnedSize) {
    system::FleetRequest req;
    req.scenario = "city-drive";
    req.processor = system::kProcessorBoth;
    req.use_adaptive_tuner = true;
    req.seeds_per_job = 7;
    req.base_seed = 42;
    req.duration_s = 33.5;
    req.meas_noise_mps2 = 0.015;
    const auto bytes = system::encode_fleet_request(req);
    ASSERT_EQ(bytes.size(), system::kFleetRequestSize);
    util::ByteReader r(bytes.data(), bytes.size());
    const auto back = system::decode_fleet_request(r);
    EXPECT_EQ(back.scenario, req.scenario);
    EXPECT_EQ(back.processor, req.processor);
    EXPECT_EQ(back.use_adaptive_tuner, req.use_adaptive_tuner);
    EXPECT_EQ(back.seeds_per_job, req.seeds_per_job);
    EXPECT_EQ(back.base_seed, req.base_seed);
    EXPECT_EQ(back.duration_s, req.duration_s);
    EXPECT_EQ(back.meas_noise_mps2, req.meas_noise_mps2);
}

TEST(ServeProtocol, StudyRequestRoundTripsAtPinnedSize) {
    system::StudyRequest req;
    req.scenario = "washboard";
    req.processor = system::kProcessorSabre;
    req.seeds_per_cell = 3;
    req.base_seed = 99;
    const auto bytes = system::encode_study_request(req);
    ASSERT_EQ(bytes.size(), system::kStudyRequestSize);
    util::ByteReader r(bytes.data(), bytes.size());
    const auto back = system::decode_study_request(r);
    EXPECT_EQ(back.scenario, req.scenario);
    EXPECT_EQ(back.processor, req.processor);
    EXPECT_EQ(back.seeds_per_cell, req.seeds_per_cell);
    EXPECT_EQ(back.base_seed, req.base_seed);
}

TEST(ServeProtocol, JobResultRoundTripsBitwise) {
    system::JobResultMessage m;
    m.job_index = 3;
    m.job_count = 9;
    m.scenario = "pothole-bump";
    m.processor = system::kProcessorSabre;
    m.within_envelope = true;
    m.seeds = 5;
    m.seeds_within_envelope = 4;
    m.estimate_rad[0] = 0.017453292519943295;  // non-round bit patterns
    m.estimate_rad[1] = -0.0087;
    m.estimate_rad[2] = 0.1234567890123456789;
    m.sigma3_rad[0] = 1e-4;
    m.residual_rms = 0.0123;
    m.meas_noise = 0.015;
    m.duration_s = 180.0;
    m.worst_err_deg[2] = 0.42;
    m.tuner_adjustments = 6;
    const auto bytes = system::encode_job_result(m);
    ASSERT_EQ(bytes.size(), system::kJobResultSize);
    util::ByteReader r(bytes.data(), bytes.size());
    const auto back = system::decode_job_result(r);
    EXPECT_EQ(system::encode_job_result(back), bytes);
}

TEST(ServeProtocol, ErrorRoundTripsAndTruncatesLongMessages) {
    system::ErrorMessage err;
    err.code = system::ErrorCode::kUnknownScenario;
    err.message = std::string(300, 'x');  // longer than the field
    const auto bytes = system::encode_error(err);
    ASSERT_EQ(bytes.size(), system::kErrorSize);
    util::ByteReader r(bytes.data(), bytes.size());
    const auto back = system::decode_error(r);
    EXPECT_EQ(back.code, system::ErrorCode::kUnknownScenario);
    EXPECT_EQ(back.message, std::string(system::kErrorMessageWidth - 1, 'x'));
}

TEST(ServeProtocol, DecodeRejectsOutOfRangeFields) {
    {
        auto bytes = system::encode_fleet_request(system::FleetRequest{});
        bytes[system::kScenarioFieldWidth] = 17;  // processor byte
        util::ByteReader r(bytes.data(), bytes.size());
        EXPECT_THROW((void)system::decode_fleet_request(r), util::WireError);
    }
    {
        system::ErrorMessage err;
        err.code = system::ErrorCode::kBadFrame;
        auto bytes = system::encode_error(err);
        bytes[0] = 200;  // error code out of range
        util::ByteReader r(bytes.data(), bytes.size());
        EXPECT_THROW((void)system::decode_error(r), util::WireError);
    }
    {
        // Trailing garbage after a well-formed payload is a frame error.
        auto bytes = system::encode_ping(system::PingMessage{});
        bytes.push_back(0);
        util::ByteReader r(bytes.data(), bytes.size());
        EXPECT_THROW((void)system::decode_ping(r), util::WireError);
    }
}

// --- framing over a real socket pair -------------------------------------

struct SocketPair {
    util::UnixSocket a, b;
    SocketPair() {
        int fds[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
            ADD_FAILURE() << "socketpair failed";
            return;
        }
        a = util::UnixSocket(fds[0]);
        b = util::UnixSocket(fds[1]);
    }
};

TEST(ServeProtocol, FrameRoundTripOverSocket) {
    SocketPair pair;
    system::PingMessage ping;
    ping.token = 0xDEADBEEFCAFEull;
    system::write_frame(pair.a, system::MessageType::kPing, 7,
                        system::encode_ping(ping));
    system::Frame frame;
    ASSERT_TRUE(system::read_frame(pair.b, frame));
    EXPECT_EQ(frame.type(), system::MessageType::kPing);
    EXPECT_EQ(frame.header.session, 7u);
    EXPECT_EQ(frame.header.version, system::kProtocolVersion);
    auto r = frame.reader();
    EXPECT_EQ(system::decode_ping(r).token, ping.token);

    pair.a.close();  // clean EOF between frames
    EXPECT_FALSE(system::read_frame(pair.b, frame));
}

TEST(ServeProtocol, ReadFrameRejectsBadMagicAndOversizedPayload) {
    {
        SocketPair pair;
        util::ByteWriter w;
        w.u32(0x12345678);  // wrong magic
        w.u16(system::kProtocolVersion);
        w.u16(2);
        w.u32(0);
        w.u32(0);
        pair.a.write_all(w.data().data(), w.size());
        system::Frame frame;
        EXPECT_THROW((void)system::read_frame(pair.b, frame),
                     util::WireError);
    }
    {
        SocketPair pair;
        util::ByteWriter w;
        w.u32(system::kProtocolMagic);
        w.u16(system::kProtocolVersion);
        w.u16(2);
        w.u32(0);
        w.u32(static_cast<std::uint32_t>(system::kMaxPayloadSize + 1));
        pair.a.write_all(w.data().data(), w.size());
        system::Frame frame;
        EXPECT_THROW((void)system::read_frame(pair.b, frame),
                     util::WireError);
    }
}

// --- daemon end to end ---------------------------------------------------

class ServeEndToEnd : public ::testing::Test {
protected:
    void SetUp() override {
        cfg_.socket_path = ::testing::TempDir() + "ob_serve_test_" +
                           std::to_string(::getpid()) + ".sock";
        cfg_.accept_poll_ms = 20;
        server_ = std::make_unique<system::FleetServer>(cfg_);
        thread_ = std::thread([this] { server_->serve(); });
        while (!server_->listening()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }

    void TearDown() override {
        server_->request_stop();
        thread_.join();
    }

    system::FleetServer::Config cfg_;
    std::unique_ptr<system::FleetServer> server_;
    std::thread thread_;
};

TEST_F(ServeEndToEnd, HandshakeGrantsDistinctSessions) {
    auto c1 = system::FleetServeClient::connect(cfg_.socket_path);
    auto c2 = system::FleetServeClient::connect(cfg_.socket_path);
    EXPECT_EQ(c1.version(), system::kProtocolVersion);
    EXPECT_NE(c1.session(), 0u);
    EXPECT_NE(c1.session(), c2.session());
    EXPECT_EQ(c1.ping(123u), 123u);
    c1.goodbye();
    c2.goodbye();
}

TEST_F(ServeEndToEnd, StreamedResultsAreBitwiseTheLocalRun) {
    system::FleetRequest req;
    req.scenario = "static-level";
    req.duration_s = 20.0;
    req.seeds_per_job = 2;

    auto client = system::FleetServeClient::connect(cfg_.socket_path);
    const auto outcome = client.run_fleet(req);
    client.goodbye();

    // The same expansion realized locally, reduced to the same wire frames.
    const auto jobs = system::expand_fleet_request(req);
    const auto local = system::FleetRunner{}.run(jobs);
    ASSERT_EQ(outcome.results.size(), jobs.size());
    ASSERT_EQ(outcome.done.jobs, jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto expected = system::make_job_result(
            static_cast<std::uint32_t>(i),
            static_cast<std::uint32_t>(jobs.size()), jobs[i].scenario,
            jobs[i], local[i]);
        EXPECT_EQ(system::encode_job_result(outcome.results[i]),
                  system::encode_job_result(expected))
            << "job " << i << " diverged from the local run";
    }
}

TEST_F(ServeEndToEnd, StudyStreamsThePanelCells) {
    system::StudyRequest req;
    req.scenario = "static-level";

    auto client = system::FleetServeClient::connect(cfg_.socket_path);
    std::vector<std::string> labels;
    const auto outcome = client.run_study(
        req, [&](const system::JobResultMessage& m) {
            labels.push_back(m.scenario);
        });
    client.goodbye();

    const auto expansion = system::expand_study_request(req);
    ASSERT_EQ(outcome.results.size(), expansion.jobs.size());
    EXPECT_EQ(labels, expansion.labels);
    EXPECT_EQ(labels.front(), "static-level/static-0.003");
}

TEST_F(ServeEndToEnd, UnknownScenarioAnswersWithTheRightCode) {
    auto client = system::FleetServeClient::connect(cfg_.socket_path);
    system::FleetRequest req;
    req.scenario = "no-such-road";
    try {
        (void)client.run_fleet(req);
        FAIL() << "expected FleetServeError";
    } catch (const system::FleetServeError& e) {
        EXPECT_EQ(e.code(), system::ErrorCode::kUnknownScenario);
        EXPECT_NE(std::string(e.what()).find("no-such-road"),
                  std::string::npos);
    }
    // The session survives a rejected request.
    EXPECT_EQ(client.ping(7u), 7u);
    client.goodbye();
}

TEST_F(ServeEndToEnd, SessionLifecycleIsEnforced) {
    {
        // First frame must be Hello.
        auto raw = util::UnixSocket::connect(cfg_.socket_path);
        system::write_frame(raw, system::MessageType::kPing, 0,
                            system::encode_ping(system::PingMessage{}));
        system::Frame frame;
        ASSERT_TRUE(system::read_frame(raw, frame));
        ASSERT_EQ(frame.type(), system::MessageType::kError);
        auto r = frame.reader();
        EXPECT_EQ(system::decode_error(r).code,
                  system::ErrorCode::kBadSession);
    }
    {
        // A frame carrying the wrong session id is rejected, session
        // survives.
        auto raw = util::UnixSocket::connect(cfg_.socket_path);
        system::write_frame(raw, system::MessageType::kHello, 0,
                            system::encode_hello(system::HelloRequest{}));
        system::Frame frame;
        ASSERT_TRUE(system::read_frame(raw, frame));
        ASSERT_EQ(frame.type(), system::MessageType::kHelloOk);
        auto hr = frame.reader();
        const auto ok = system::decode_hello_ok(hr);
        system::write_frame(raw, system::MessageType::kPing, ok.session + 1,
                            system::encode_ping(system::PingMessage{}));
        ASSERT_TRUE(system::read_frame(raw, frame));
        ASSERT_EQ(frame.type(), system::MessageType::kError);
        auto er = frame.reader();
        EXPECT_EQ(system::decode_error(er).code,
                  system::ErrorCode::kBadSession);
    }
    {
        // A client whose version range excludes the server's is refused.
        auto raw = util::UnixSocket::connect(cfg_.socket_path);
        system::HelloRequest hello;
        hello.min_version = system::kProtocolVersion + 1;
        hello.max_version = system::kProtocolVersion + 5;
        system::write_frame(raw, system::MessageType::kHello, 0,
                            system::encode_hello(hello));
        system::Frame frame;
        ASSERT_TRUE(system::read_frame(raw, frame));
        ASSERT_EQ(frame.type(), system::MessageType::kError);
        auto r = frame.reader();
        EXPECT_EQ(system::decode_error(r).code,
                  system::ErrorCode::kBadVersion);
    }
    {
        // A malformed payload (wrong size for the type) answers kBadFrame.
        auto raw = util::UnixSocket::connect(cfg_.socket_path);
        system::write_frame(raw, system::MessageType::kHello, 0,
                            system::encode_hello(system::HelloRequest{}));
        system::Frame frame;
        ASSERT_TRUE(system::read_frame(raw, frame));
        auto hr = frame.reader();
        const auto ok = system::decode_hello_ok(hr);
        const std::vector<std::uint8_t> short_payload(3, 0);
        system::write_frame(raw, system::MessageType::kPing, ok.session,
                            short_payload);
        ASSERT_TRUE(system::read_frame(raw, frame));
        ASSERT_EQ(frame.type(), system::MessageType::kError);
        auto er = frame.reader();
        EXPECT_EQ(system::decode_error(er).code,
                  system::ErrorCode::kBadFrame);
    }
}

TEST_F(ServeEndToEnd, ConcurrentClientsAllServed) {
    constexpr std::size_t kClients = 4;
    std::atomic<std::size_t> ok{0};
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            auto client = system::FleetServeClient::connect(cfg_.socket_path);
            if (client.ping(c) != c) return;
            system::FleetRequest req;
            req.scenario = "static-level";
            req.duration_s = 20.0;
            req.base_seed = 2026 + c;  // distinct work per client
            const auto outcome = client.run_fleet(req);
            client.goodbye();
            if (outcome.results.size() == 1 && outcome.done.jobs == 1) {
                ok.fetch_add(1);
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(ok.load(), kClients);
}

TEST_F(ServeEndToEnd, ShutdownViaProtocolStopsTheDaemon) {
    auto client = system::FleetServeClient::connect(cfg_.socket_path);
    client.shutdown_server();
    thread_.join();  // serve() returns once the ack is sent
    EXPECT_TRUE(server_->stopping());
    // The listener is gone: a fresh connect must fail.
    EXPECT_THROW((void)util::UnixSocket::connect(cfg_.socket_path),
                 util::SocketError);
    thread_ = std::thread([] {});  // keep TearDown's join well-defined
}

}  // namespace
