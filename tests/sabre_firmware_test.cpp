#include <gtest/gtest.h>

#include <cmath>

#include "core/boresight_ekf.hpp"
#include "math/rotation.hpp"
#include "sabre/assembler.hpp"
#include "sabre/firmware.hpp"
#include "sim/scenario.hpp"
#include "system/experiment.hpp"
#include "system/sabre_runner.hpp"

// The paper's headline architectural claim: the Kalman fusion runs as
// machine code on the Sabre soft core with softfloat-emulated IEEE
// arithmetic. These tests execute the generated firmware instruction by
// instruction and hold it against ground truth and the native filter.

namespace {

using namespace ob;
using math::deg2rad;
using math::EulerAngles;
using math::rad2deg;
using math::Vec2;
using math::Vec3;

TEST(SabreFirmware, AssemblesWithinProgramMemory) {
    const auto program = sabre::assemble(sabre::boresight_firmware_source());
    EXPECT_LE(program.words.size(), sabre::kProgramWords);
    // It is a substantial program (the whole EKF update, unrolled).
    EXPECT_GT(program.words.size(), 500u);
}

TEST(SabreFirmware, ConvergesOnCleanStaticScene) {
    // Noise-free samples of a 1.5-degree pitch misalignment under gravity:
    // the firmware filter must converge to it.
    system::SabreFusionSystem sys;
    const comm::DmuScale scale;
    const comm::AdxlConfig adxl;
    const double pitch = deg2rad(1.5);

    for (int k = 0; k < 400; ++k) {
        comm::DmuSample dmu;
        dmu.accel[0] = 0;
        dmu.accel[1] = 0;
        dmu.accel[2] = scale.accel_to_raw(-9.80665);
        const Vec3 f_s = math::dcm_from_euler({0.0, pitch, 0.0}) *
                         Vec3{0.0, 0.0, -9.80665};
        const auto timing = comm::adxl_encode(f_s[0], f_s[1],
                                              static_cast<std::uint8_t>(k),
                                              adxl);
        sys.push(dmu, timing);
    }
    const auto est = sys.run_pending();
    EXPECT_EQ(est.updates, 400u);
    EXPECT_NEAR(rad2deg(est.angles.pitch), 1.5, 0.1);
    EXPECT_NEAR(rad2deg(est.angles.roll), 0.0, 0.1);
    // 3-sigma published and shrinking.
    EXPECT_GT(est.sigma3[0], 0.0);
    EXPECT_LT(est.sigma3[0], deg2rad(1.0));
}

TEST(SabreFirmware, MatchesNativeFilterOnSameData) {
    // Same raw sample stream through (a) the Sabre firmware (float32 via
    // the softfloat FPU, small-angle model) and (b) the native
    // double-precision EKF in small-angle mode. Estimates must agree to
    // within float32/modeling tolerance.
    const EulerAngles truth = EulerAngles::from_deg(1.0, -0.8, 0.6);
    auto scenario_cfg = sim::ScenarioConfig::static_tilted(
        60.0, truth, EulerAngles::from_deg(10.0, 6.0, 0.0));
    // Clean instruments isolate the numerics from calibration effects.
    scenario_cfg.imu_errors = sim::ImuErrorConfig{};
    scenario_cfg.imu_errors.accel_bias_sigma = 0.0;
    scenario_cfg.imu_errors.accel_noise_sigma = 0.001;
    scenario_cfg.imu_errors.accel_scale_sigma = 0.0;
    scenario_cfg.imu_errors.internal_misalign_sigma = 0.0;
    scenario_cfg.acc_errors.bias_sigma = 0.0;
    scenario_cfg.acc_errors.noise_sigma = 0.001;
    scenario_cfg.acc_errors.scale_sigma = 0.0;
    scenario_cfg.acc_errors.cross_axis = 0.0;
    scenario_cfg.vibration.engine_amp_idle = 0.0;
    scenario_cfg.vibration.road_amp_per_sqrt_mps = 0.0;
    sim::Scenario sc(scenario_cfg, 7);

    system::SabreFusionSystem::Config scfg;
    scfg.r_sigma = 0.005;
    system::SabreFusionSystem sabre_sys(scfg);

    core::BoresightConfig ncfg;
    ncfg.meas_noise_mps2 = 0.005;
    ncfg.angle_process_noise = std::sqrt(scfg.q_variance);
    core::BoresightEkf native(ncfg);

    while (auto s = sc.next()) {
        sabre_sys.push(s->dmu, s->adxl);
        const auto d = system::decode_step(sc, *s);
        (void)native.step(d.f_body, d.acc_xy);
    }
    const auto est = sabre_sys.run_pending(2'000'000'000ull);
    const auto nat = native.misalignment();

    EXPECT_NEAR(rad2deg(est.angles.roll), rad2deg(nat.roll), 0.05);
    EXPECT_NEAR(rad2deg(est.angles.pitch), rad2deg(nat.pitch), 0.05);
    EXPECT_NEAR(rad2deg(est.angles.yaw), rad2deg(nat.yaw), 0.15);
    // And both near truth.
    EXPECT_NEAR(rad2deg(est.angles.roll), 1.0, 0.2);
    EXPECT_NEAR(rad2deg(est.angles.pitch), -0.8, 0.2);
}

TEST(SabreFirmware, PublishesResidualsAndCounters) {
    system::SabreFusionSystem sys;
    const comm::DmuScale scale;
    comm::DmuSample dmu;
    dmu.accel[2] = scale.accel_to_raw(-9.80665);
    const auto timing = comm::adxl_encode(0.0, 0.0, 0, comm::AdxlConfig{});
    sys.push(dmu, timing);
    const auto est = sys.run_pending();
    EXPECT_EQ(est.updates, 1u);
    EXPECT_EQ(sys.control().reg(sabre::ControlPeripheral::kStatus), 1u);
    // Residual magnitude is bounded by the quantized gravity mismatch.
    EXPECT_LT(std::abs(est.residual[0]), 0.05);
}

TEST(SabreFirmware, CycleCostIsRealTimeCapable) {
    // The paper ran the filter at sensor rate (100 Hz) on a ~25 MHz soft
    // core. Measure cycles per update and check the budget holds with the
    // FPU peripheral doing the float work.
    system::SabreFusionSystem sys;
    const comm::DmuScale scale;
    comm::DmuSample dmu;
    dmu.accel[2] = scale.accel_to_raw(-9.80665);
    for (int k = 0; k < 50; ++k) {
        sys.push(dmu, comm::adxl_encode(0.0, 0.0,
                                        static_cast<std::uint8_t>(k),
                                        comm::AdxlConfig{}));
    }
    (void)sys.run_pending();
    const double cpu_per_update = sys.cycles_per_update();
    EXPECT_GT(cpu_per_update, 100.0);
    // 100 Hz on 25 MHz leaves 250k cycles per update; the firmware must
    // fit comfortably.
    EXPECT_LT(cpu_per_update, 250000.0);
    EXPECT_GT(sys.fpu_operations(), 0u);
}

TEST(SabreFirmware, TracksStepChange) {
    // Re-alignment capability end-to-end on the embedded path.
    system::SabreFusionSystem::Config cfg;
    cfg.q_variance = 1e-10;  // allow drift tracking
    system::SabreFusionSystem sys(cfg);
    const comm::DmuScale scale;
    const comm::AdxlConfig adxl;

    auto push_epoch = [&](double pitch, int k) {
        comm::DmuSample dmu;
        dmu.accel[2] = scale.accel_to_raw(-9.80665);
        const Vec3 f_s = math::dcm_from_euler({0.0, pitch, 0.0}) *
                         Vec3{0.0, 0.0, -9.80665};
        sys.push(dmu, comm::adxl_encode(f_s[0], f_s[1],
                                        static_cast<std::uint8_t>(k), adxl));
    };
    for (int k = 0; k < 300; ++k) push_epoch(deg2rad(0.5), k);
    (void)sys.run_pending();
    for (int k = 0; k < 2000; ++k) push_epoch(deg2rad(1.5), k);
    const auto est = sys.run_pending(4'000'000'000ull);
    EXPECT_NEAR(rad2deg(est.angles.pitch), 1.5, 0.25);
}

}  // namespace
