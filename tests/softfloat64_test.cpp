#include <gtest/gtest.h>

#include <cfenv>
#include <cmath>
#include <cstring>

#include "softfloat/softfloat64.hpp"
#include "util/rng.hpp"

// binary64 conformance vs the host FPU, using the same noinline/volatile
// oracle strategy as the binary32 suite.

namespace {

namespace sf = ob::softfloat;
using ob::util::Rng;

[[gnu::noinline]] double host_add(double a, double b) {
    volatile double x = a, y = b;
    return x + y;
}
[[gnu::noinline]] double host_sub(double a, double b) {
    volatile double x = a, y = b;
    return x - y;
}
[[gnu::noinline]] double host_mul(double a, double b) {
    volatile double x = a, y = b;
    return x * y;
}
[[gnu::noinline]] double host_div(double a, double b) {
    volatile double x = a, y = b;
    return x / y;
}
[[gnu::noinline]] double host_sqrt(double a) {
    volatile double x = a;
    return std::sqrt(x);
}
[[gnu::noinline]] float host_narrow(double a) {
    // The call boundary pins the conversion inside the fesetround window
    // (inlined casts can be scheduled outside it).
    volatile double x = a;
    return static_cast<float>(x);
}

int host_mode(sf::Round r) {
    switch (r) {
        case sf::Round::kNearestEven: return FE_TONEAREST;
        case sf::Round::kTowardZero: return FE_TOWARDZERO;
        case sf::Round::kDown: return FE_DOWNWARD;
        case sf::Round::kUp: return FE_UPWARD;
    }
    return FE_TONEAREST;
}

constexpr unsigned kComparedFlags =
    sf::kInvalid | sf::kDivByZero | sf::kOverflow | sf::kInexact;

unsigned host_flags() {
    unsigned f = 0;
    if (std::fetestexcept(FE_INVALID)) f |= sf::kInvalid;
    if (std::fetestexcept(FE_DIVBYZERO)) f |= sf::kDivByZero;
    if (std::fetestexcept(FE_OVERFLOW)) f |= sf::kOverflow;
    if (std::fetestexcept(FE_INEXACT)) f |= sf::kInexact;
    return f;
}

std::pair<sf::F64, sf::F64> random_pair64(Rng& rng) {
    sf::F64 a{rng.bits64()};
    sf::F64 b{rng.bits64()};
    if (rng.chance(0.5)) {
        const std::int32_t ea = static_cast<std::int32_t>(a.exponent());
        std::int32_t eb = ea + static_cast<std::int32_t>(rng.uniform_int(-2, 2));
        eb = std::max(0, std::min(0x7FE, eb));
        b.bits = (b.bits & 0x800FFFFFFFFFFFFFull) |
                 (static_cast<std::uint64_t>(eb) << 52);
    }
    return {a, b};
}

enum class Op { kAdd, kSub, kMul, kDiv };

struct Fuzz64Case {
    Op op;
    sf::Round mode;
    int iterations;
};

class SoftFloat64Fuzz : public ::testing::TestWithParam<Fuzz64Case> {};

TEST_P(SoftFloat64Fuzz, MatchesHostBitExactly) {
    const auto& p = GetParam();
    Rng rng(0xD00Dull + static_cast<std::uint64_t>(p.op) * 31 +
            static_cast<std::uint64_t>(p.mode) * 131);
    for (int i = 0; i < p.iterations; ++i) {
        const auto [a, b] = random_pair64(rng);
        sf::Context ctx;
        ctx.rounding = p.mode;
        sf::F64 mine;
        switch (p.op) {
            case Op::kAdd: mine = sf::add(a, b, ctx); break;
            case Op::kSub: mine = sf::sub(a, b, ctx); break;
            case Op::kMul: mine = sf::mul(a, b, ctx); break;
            case Op::kDiv: mine = sf::div(a, b, ctx); break;
        }
        std::feclearexcept(FE_ALL_EXCEPT);
        std::fesetround(host_mode(p.mode));
        double host_r = 0.0;
        switch (p.op) {
            case Op::kAdd: host_r = host_add(sf::to_host(a), sf::to_host(b)); break;
            case Op::kSub: host_r = host_sub(sf::to_host(a), sf::to_host(b)); break;
            case Op::kMul: host_r = host_mul(sf::to_host(a), sf::to_host(b)); break;
            case Op::kDiv: host_r = host_div(sf::to_host(a), sf::to_host(b)); break;
        }
        const unsigned hflags = host_flags();
        std::fesetround(FE_TONEAREST);
        const sf::F64 href = sf::from_host(host_r);
        if (mine.is_nan() || href.is_nan()) {
            ASSERT_EQ(mine.is_nan(), href.is_nan())
                << std::hex << "a=0x" << a.bits << " b=0x" << b.bits;
        } else {
            ASSERT_EQ(mine.bits, href.bits)
                << std::hex << "op=" << static_cast<int>(p.op) << " a=0x"
                << a.bits << " b=0x" << b.bits << " mine=0x" << mine.bits
                << " host=0x" << href.bits;
        }
        if (!a.is_nan() && !b.is_nan()) {
            ASSERT_EQ(ctx.flags & kComparedFlags, hflags & kComparedFlags)
                << std::hex << "a=0x" << a.bits << " b=0x" << b.bits;
        }
    }
}

std::string fuzz64_name(const ::testing::TestParamInfo<Fuzz64Case>& info) {
    const char* ops[] = {"Add", "Sub", "Mul", "Div"};
    const char* modes[] = {"Nearest", "TowardZero", "Down", "Up"};
    return std::string(ops[static_cast<int>(info.param.op)]) +
           modes[static_cast<int>(info.param.mode)];
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAllModes, SoftFloat64Fuzz,
    ::testing::Values(Fuzz64Case{Op::kAdd, sf::Round::kNearestEven, 60000},
                      Fuzz64Case{Op::kSub, sf::Round::kNearestEven, 60000},
                      Fuzz64Case{Op::kMul, sf::Round::kNearestEven, 60000},
                      Fuzz64Case{Op::kDiv, sf::Round::kNearestEven, 60000},
                      Fuzz64Case{Op::kAdd, sf::Round::kTowardZero, 15000},
                      Fuzz64Case{Op::kSub, sf::Round::kDown, 15000},
                      Fuzz64Case{Op::kMul, sf::Round::kUp, 15000},
                      Fuzz64Case{Op::kDiv, sf::Round::kTowardZero, 15000},
                      Fuzz64Case{Op::kAdd, sf::Round::kUp, 15000},
                      Fuzz64Case{Op::kMul, sf::Round::kDown, 15000}),
    fuzz64_name);

TEST(SoftFloat64Sqrt, MatchesHost) {
    for (const sf::Round mode :
         {sf::Round::kNearestEven, sf::Round::kTowardZero, sf::Round::kDown,
          sf::Round::kUp}) {
        Rng rng(0xABBA + static_cast<std::uint64_t>(mode));
        for (int i = 0; i < 30000; ++i) {
            const sf::F64 a{rng.bits64()};
            sf::Context ctx;
            ctx.rounding = mode;
            const sf::F64 mine = sf::sqrt(a, ctx);
            std::fesetround(host_mode(mode));
            const double hr = host_sqrt(sf::to_host(a));
            std::fesetround(FE_TONEAREST);
            const sf::F64 href = sf::from_host(hr);
            if (mine.is_nan() || href.is_nan()) {
                ASSERT_EQ(mine.is_nan(), href.is_nan())
                    << std::hex << "a=0x" << a.bits;
            } else {
                ASSERT_EQ(mine.bits, href.bits)
                    << std::hex << "a=0x" << a.bits << " mode="
                    << static_cast<int>(mode);
            }
        }
    }
}

TEST(SoftFloat64Directed, SpecialValues) {
    sf::Context ctx;
    EXPECT_TRUE(sf::add(sf::F64::inf(false), sf::F64::inf(true), ctx).is_nan());
    EXPECT_TRUE(ctx.any(sf::kInvalid));
    ctx.clear();
    EXPECT_TRUE(sf::div(sf::F64::one(), sf::F64::zero(false), ctx).is_inf());
    EXPECT_TRUE(ctx.any(sf::kDivByZero));
    ctx.clear();
    EXPECT_TRUE(sf::mul(sf::F64::inf(false), sf::F64::zero(true), ctx).is_nan());
    EXPECT_TRUE(ctx.any(sf::kInvalid));
    ctx.clear();
    EXPECT_TRUE(sf::sqrt(sf::neg(sf::F64::one()), ctx).is_nan());
    EXPECT_TRUE(ctx.any(sf::kInvalid));
    // Exact arithmetic raises nothing.
    ctx.clear();
    const sf::F64 two = sf::add(sf::F64::one(), sf::F64::one(), ctx);
    EXPECT_EQ(sf::to_host(two), 2.0);
    EXPECT_EQ(ctx.flags, 0u);
}

TEST(SoftFloat64Compare, FuzzAgainstHost) {
    Rng rng(0xCAFE);
    sf::Context ctx;
    for (int i = 0; i < 60000; ++i) {
        const sf::F64 a{rng.bits64()};
        const sf::F64 b{rng.bits64()};
        const double fa = sf::to_host(a);
        const double fb = sf::to_host(b);
        EXPECT_EQ(sf::eq(a, b, ctx), fa == fb);
        EXPECT_EQ(sf::lt(a, b, ctx), fa < fb);
        EXPECT_EQ(sf::le(a, b, ctx), fa <= fb);
    }
}

TEST(SoftFloat64Convert, FromI32IsExact) {
    Rng rng(0x1111);
    for (int i = 0; i < 30000; ++i) {
        const auto v = static_cast<std::int32_t>(rng.bits32());
        const sf::F64 mine = sf::from_i32_f64(v);
        EXPECT_EQ(sf::to_host(mine), static_cast<double>(v)) << v;
    }
    EXPECT_EQ(sf::to_host(sf::from_i32_f64(0)), 0.0);
    EXPECT_EQ(sf::to_host(sf::from_i32_f64(INT32_MIN)), -2147483648.0);
    EXPECT_EQ(sf::to_host(sf::from_i32_f64(INT32_MAX)), 2147483647.0);
}

TEST(SoftFloat64Convert, ToI32RoundingAndSaturation) {
    sf::Context ctx;
    EXPECT_EQ(sf::to_i32(sf::from_host(2.5), ctx), 2);   // ties to even
    EXPECT_EQ(sf::to_i32(sf::from_host(3.5), ctx), 4);
    EXPECT_EQ(sf::to_i32(sf::from_host(-2147483648.0), ctx), INT32_MIN);
    EXPECT_FALSE(ctx.any(sf::kInvalid));
    ctx.clear();
    EXPECT_EQ(sf::to_i32(sf::from_host(2147483648.0), ctx), INT32_MAX);
    EXPECT_TRUE(ctx.any(sf::kInvalid));
    ctx.clear();
    EXPECT_EQ(sf::to_i32(sf::F64::quiet_nan(), ctx), INT32_MAX);
    EXPECT_TRUE(ctx.any(sf::kInvalid));
    // Round-trip of representable ints.
    Rng rng(0x2222);
    for (int i = 0; i < 20000; ++i) {
        const auto v = static_cast<std::int32_t>(rng.bits32());
        ctx.clear();
        EXPECT_EQ(sf::to_i32(sf::from_i32_f64(v), ctx), v);
        EXPECT_FALSE(ctx.any(sf::kInexact));
    }
}

TEST(SoftFloat64Convert, WideningIsExactNarrowingRounds) {
    Rng rng(0x3333);
    sf::Context ctx;
    // f32 -> f64 is exact for every input.
    for (int i = 0; i < 60000; ++i) {
        const sf::F32 a{rng.bits32()};
        const sf::F64 wide = sf::f32_to_f64(a, ctx);
        const float fa = sf::to_host(a);
        if (a.is_nan()) {
            EXPECT_TRUE(wide.is_nan());
        } else {
            EXPECT_EQ(sf::to_host(wide), static_cast<double>(fa))
                << std::hex << a.bits;
        }
    }
    // f64 -> f32 matches the host's cast in every rounding mode.
    for (const sf::Round mode :
         {sf::Round::kNearestEven, sf::Round::kTowardZero, sf::Round::kDown,
          sf::Round::kUp}) {
        for (int i = 0; i < 30000; ++i) {
            const sf::F64 a{rng.bits64()};
            sf::Context c2;
            c2.rounding = mode;
            const sf::F32 mine = sf::f64_to_f32(a, c2);
            std::fesetround(host_mode(mode));
            const float hr = host_narrow(sf::to_host(a));
            std::fesetround(FE_TONEAREST);
            const sf::F32 href = sf::from_host(hr);
            if (mine.is_nan() || href.is_nan()) {
                ASSERT_EQ(mine.is_nan(), href.is_nan());
            } else {
                ASSERT_EQ(mine.bits, href.bits)
                    << std::hex << "a=0x" << a.bits << " mode="
                    << static_cast<int>(mode);
            }
        }
    }
}

TEST(SoftFloat64Properties, KahanSummationWorksInEmulation) {
    // A numerical-behaviour smoke test: compensated summation of 1e5
    // small values through the emulated arithmetic matches the host.
    sf::Context ctx;
    sf::F64 sum = sf::F64::zero();
    sf::F64 c = sf::F64::zero();
    const sf::F64 tiny = sf::from_host(0.1);
    for (int i = 0; i < 100000; ++i) {
        const sf::F64 y = sf::sub(tiny, c, ctx);
        const sf::F64 t = sf::add(sum, y, ctx);
        c = sf::sub(sf::sub(t, sum, ctx), y, ctx);
        sum = t;
    }
    EXPECT_NEAR(sf::to_host(sum), 10000.0, 1e-9);
}

}  // namespace
