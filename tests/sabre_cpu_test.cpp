#include <gtest/gtest.h>

#include <bit>

#include "sabre/assembler.hpp"
#include "sabre/cpu.hpp"
#include "sabre/peripherals.hpp"

namespace {

using namespace ob::sabre;

SabreCpu make_cpu(const char* src) { return SabreCpu(assemble(src)); }

TEST(SabreCpu, ArithmeticBasics) {
    auto cpu = make_cpu(R"(
        addi r1, zero, 5
        addi r2, zero, -3
        add r3, r1, r2
        sub r4, r1, r2
        mul r5, r1, r2
        and r6, r1, r2
        or r7, r1, r2
        xor r8, r1, r2
        halt
    )");
    cpu.run();
    EXPECT_EQ(cpu.reg(3), 2u);
    EXPECT_EQ(cpu.reg(4), 8u);
    EXPECT_EQ(static_cast<std::int32_t>(cpu.reg(5)), -15);
    EXPECT_EQ(cpu.reg(6), 5u & static_cast<std::uint32_t>(-3));
    EXPECT_EQ(cpu.reg(7), 5u | static_cast<std::uint32_t>(-3));
    EXPECT_TRUE(cpu.halted());
}

TEST(SabreCpu, RegisterZeroIsHardwired) {
    auto cpu = make_cpu(R"(
        addi r0, zero, 42
        add r1, zero, zero
        halt
    )");
    cpu.run();
    EXPECT_EQ(cpu.reg(0), 0u);
    EXPECT_EQ(cpu.reg(1), 0u);
}

TEST(SabreCpu, ShiftsSignedAndUnsigned) {
    auto cpu = make_cpu(R"(
        addi r1, zero, -16
        srai r2, r1, 2
        srli r3, r1, 2
        slli r4, r1, 1
        addi r5, zero, 2
        sra r6, r1, r5
        halt
    )");
    cpu.run();
    EXPECT_EQ(static_cast<std::int32_t>(cpu.reg(2)), -4);
    EXPECT_EQ(cpu.reg(3), 0xFFFFFFF0u >> 2);
    EXPECT_EQ(static_cast<std::int32_t>(cpu.reg(4)), -32);
    EXPECT_EQ(static_cast<std::int32_t>(cpu.reg(6)), -4);
}

TEST(SabreCpu, ComparisonsAndSlt) {
    auto cpu = make_cpu(R"(
        addi r1, zero, -1
        addi r2, zero, 1
        slt r3, r1, r2     ; signed: -1 < 1 -> 1
        sltu r4, r1, r2    ; unsigned: 0xFFFFFFFF < 1 -> 0
        slti r5, r2, 100
        halt
    )");
    cpu.run();
    EXPECT_EQ(cpu.reg(3), 1u);
    EXPECT_EQ(cpu.reg(4), 0u);
    EXPECT_EQ(cpu.reg(5), 1u);
}

TEST(SabreCpu, LoadStoreDataMemory) {
    auto cpu = make_cpu(R"(
        addi r1, zero, 0x100
        addi r2, zero, 1234
        sw r2, 4(r1)
        lw r3, 4(r1)
        halt
    )");
    cpu.run();
    EXPECT_EQ(cpu.reg(3), 1234u);
    EXPECT_EQ(cpu.load_data(0x104), 1234u);
}

TEST(SabreCpu, LoopComputesFibonacci) {
    auto cpu = make_cpu(R"(
        addi r1, zero, 0   ; fib(0)
        addi r2, zero, 1   ; fib(1)
        addi r3, zero, 10  ; counter
    loop:
        add r4, r1, r2
        mov r1, r2
        mov r2, r4
        addi r3, r3, -1
        bne r3, zero, loop
        halt
    )");
    cpu.run();
    EXPECT_EQ(cpu.reg(2), 89u);  // fib(11)
}

TEST(SabreCpu, CallAndReturn) {
    auto cpu = make_cpu(R"(
        addi r1, zero, 20
        call double_it
        call double_it
        halt
    double_it:
        add r1, r1, r1
        ret
    )");
    cpu.run();
    EXPECT_EQ(cpu.reg(1), 80u);
}

TEST(SabreCpu, BranchVariants) {
    auto cpu = make_cpu(R"(
        addi r1, zero, -5
        addi r2, zero, 5
        addi r10, zero, 0
        bge r1, r2, skip1     ; signed: not taken
        addi r10, r10, 1
    skip1:
        bgeu r1, r2, skip2    ; unsigned: 0xFFFFFFFB >= 5 -> taken
        addi r10, r10, 100
    skip2:
        blt r1, r2, skip3     ; taken
        addi r10, r10, 100
    skip3:
        bltu r1, r2, skip4    ; not taken
        addi r10, r10, 10
    skip4:
        halt
    )");
    cpu.run();
    EXPECT_EQ(cpu.reg(10), 11u);
}

TEST(SabreCpu, CycleAccounting) {
    auto cpu = make_cpu(R"(
        addi r1, zero, 1   ; 1 cycle
        lw r2, 0(zero)     ; 2 cycles
        sw r2, 4(zero)     ; 2 cycles
        mul r3, r1, r1     ; 3 cycles
        beq r1, r1, next   ; 1 + 1 taken
    next:
        halt               ; 1
    )");
    cpu.run();
    EXPECT_EQ(cpu.cycles(), 1u + 2 + 2 + 3 + 2 + 1);
    EXPECT_EQ(cpu.instructions(), 6u);
}

TEST(SabreCpu, TrapsOnBadAccess) {
    auto misaligned = make_cpu(R"(
        addi r1, zero, 2
        lw r2, 0(r1)
        halt
    )");
    EXPECT_THROW(misaligned.run(), SabreTrap);

    auto out_of_range = make_cpu(R"(
        lui r1, 0x1
        lw r2, 0(r1)   ; address 0x4000 << ... = 16384? within 64KB; use bigger
        halt
    )");
    // 0x1 << 14 = 16384: valid. Build a really bad one:
    auto really_bad = make_cpu(R"(
        lui r1, 0x1F
        lw r2, 0(r1)   ; 0x7C000 = 507904 > 64KB
        halt
    )");
    EXPECT_THROW(really_bad.run(), SabreTrap);
    out_of_range.run();  // should be fine
}

TEST(SabreCpu, TrapOnRunawayPc) {
    // No halt: pc runs off the end of the program.
    auto cpu = make_cpu("addi r1, zero, 1");
    EXPECT_THROW(cpu.run(), SabreTrap);
}

TEST(SabreCpu, JalTargetOutOfProgramTrapsAtExecute) {
    // Forward jump past the end: the trap fires at the jump itself, with
    // the jump's pc, not on the next fetch.
    auto cpu = make_cpu(R"(
        jal r2, 100
        halt
    )");
    try {
        cpu.run();
        FAIL() << "expected SabreTrap";
    } catch (const SabreTrap& trap) {
        EXPECT_EQ(trap.pc(), 0u);
        EXPECT_NE(std::string(trap.what()).find("jump target out of program"),
                  std::string::npos);
    }
    // The faulting jump must not have written its link register.
    EXPECT_EQ(cpu.reg(2), 0u);
}

TEST(SabreCpu, JalrWrappedTargetTraps) {
    // rs1 + imm wraps the 32-bit space; the old pipeline computed the
    // target modulo 2^32 and could land in-program silently. The target
    // is now evaluated exactly, so the wrap traps.
    auto cpu = make_cpu(R"(
        addi r1, zero, 1
        jalr r2, r1, -2    ; exact target -1: out of program
        halt
    )");
    try {
        cpu.run();
        FAIL() << "expected SabreTrap";
    } catch (const SabreTrap& trap) {
        EXPECT_EQ(trap.pc(), 1u);
        EXPECT_NE(std::string(trap.what()).find("jump target out of program"),
                  std::string::npos);
    }
    EXPECT_EQ(cpu.reg(2), 0u);

    auto big = make_cpu(R"(
        li r1, 0xFFFFFFFF
        jalr r2, r1, 3     ; wrapped 32-bit arithmetic would give pc 2
        halt
    )");
    EXPECT_THROW(big.run(), SabreTrap);
}

TEST(SabreCpu, InvalidWordRejectedAtLoadWithIndex) {
    // A word with an unknown opcode is rejected when the program is
    // loaded (predecode), with the offending word index — not at runtime
    // with a context-free invalid_argument.
    Program p = assemble("addi r1, zero, 1\nhalt\n");
    p.words.insert(p.words.begin() + 1, 0x3Eu << 26);
    try {
        SabreCpu cpu(p);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("program word 1"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("unknown opcode"),
                  std::string::npos);
    }
}

TEST(SabreCpu, RunStopsAtOrBeforeBudget) {
    // mul costs 3 cycles; a budget of 7 fits two muls (6 cycles) and must
    // not issue the third.
    auto cpu = make_cpu(R"(
        mul r1, r2, r3
        mul r1, r2, r3
        mul r1, r2, r3
        halt
    )");
    const std::size_t executed = cpu.run(/*max_cycles=*/7);
    EXPECT_EQ(executed, 2u);
    EXPECT_EQ(cpu.cycles(), 6u);
    EXPECT_FALSE(cpu.halted());
}

TEST(SabreCpu, TraceHookObservesExecution) {
    auto cpu = make_cpu(R"(
        addi r1, zero, 1
        addi r2, zero, 2
        halt
    )");
    std::vector<std::uint32_t> pcs;
    cpu.set_trace([&](std::uint32_t pc, const Instruction&) {
        pcs.push_back(pc);
    });
    cpu.run();
    EXPECT_EQ(pcs, (std::vector<std::uint32_t>{0, 1, 2}));
}

// --- Peripherals ---------------------------------------------------------------

TEST(SabrePeripherals, LedsAndSwitches) {
    auto cpu = make_cpu(R"(
        lui r1, 0x20000       ; peripheral base
        lw r2, 0x100(r1)      ; read switches
        sw r2, 0(r1)          ; echo to LEDs
        halt
    )");
    auto leds = std::make_shared<LedsPeripheral>();
    auto sw = std::make_shared<SwitchesPeripheral>();
    cpu.bus().attach(periph::kLeds, leds);
    cpu.bus().attach(periph::kSwitches, sw);
    sw->set(0xA5);
    cpu.run();
    EXPECT_EQ(leds->state(), 0xA5u);
}

TEST(SabrePeripherals, UnmappedAddressTraps) {
    auto cpu = make_cpu(R"(
        lui r1, 0x20000
        lw r2, 0x700(r1)
        halt
    )");
    EXPECT_THROW(cpu.run(), std::out_of_range);
}

TEST(SabrePeripherals, UartLoopback) {
    auto cpu = make_cpu(R"(
        lui r1, 0x20000
    poll:
        lw r2, 0x400(r1)      ; status
        andi r2, r2, 1
        beq r2, zero, poll
        lw r3, 0x404(r1)      ; rx byte
        addi r3, r3, 1
        sw r3, 0x408(r1)      ; tx byte+1
        halt
    )");
    auto uart = std::make_shared<UartPeripheral>();
    cpu.bus().attach(periph::kUartDmu, uart);
    uart->host_push(0x41);
    cpu.run();
    const auto tx = uart->host_drain();
    ASSERT_EQ(tx.size(), 1u);
    EXPECT_EQ(tx[0], 0x42);
}

TEST(SabrePeripherals, ControlRegistersQ16) {
    ControlPeripheral ctrl;
    // 1.5 rad in Q16.16.
    ctrl.write(4 * ControlPeripheral::kRoll, 98304);
    EXPECT_DOUBLE_EQ(ctrl.angle(ControlPeripheral::kRoll), 1.5);
    // Negative angles come back signed.
    ctrl.write(4 * ControlPeripheral::kPitch,
               static_cast<std::uint32_t>(-32768));
    EXPECT_DOUBLE_EQ(ctrl.angle(ControlPeripheral::kPitch), -0.5);
}

TEST(SabrePeripherals, FpuAddMatchesSoftfloat) {
    FpuPeripheral fpu;
    const auto bits = [](float f) { return std::bit_cast<std::uint32_t>(f); };
    fpu.write(0x0, bits(1.5f));
    fpu.write(0x4, bits(2.25f));
    fpu.write(0x8, FpuPeripheral::kAdd);
    EXPECT_EQ(fpu.read(0xC), bits(3.75f));
    fpu.write(0x8, FpuPeripheral::kMul);
    EXPECT_EQ(fpu.read(0xC), bits(1.5f * 2.25f));
    fpu.write(0x8, FpuPeripheral::kDiv);
    EXPECT_EQ(fpu.read(0xC), bits(1.5f / 2.25f));
    EXPECT_EQ(fpu.operations(), 3u);
}

TEST(SabrePeripherals, FpuConversionAndCompare) {
    FpuPeripheral fpu;
    const auto bits = [](float f) { return std::bit_cast<std::uint32_t>(f); };
    fpu.write(0x0, static_cast<std::uint32_t>(-7));
    fpu.write(0x8, FpuPeripheral::kI2F);
    EXPECT_EQ(fpu.read(0xC), bits(-7.0f));

    fpu.write(0x0, bits(2.5f));
    fpu.write(0x8, FpuPeripheral::kF2I);
    EXPECT_EQ(static_cast<std::int32_t>(fpu.read(0xC)), 2);  // ties to even

    fpu.write(0x0, bits(1.0f));
    fpu.write(0x4, bits(2.0f));
    fpu.write(0x8, FpuPeripheral::kCmpLt);
    EXPECT_EQ(fpu.read(0xC), 1u);
}

TEST(SabrePeripherals, FpuSqrtViaProgram) {
    auto cpu = make_cpu(R"(
        lui r1, 0x20000
        li r2, 0x41100000     ; 9.0f
        sw r2, 0x700(r1)      ; operand A
        addi r2, zero, 4      ; sqrt
        sw r2, 0x708(r1)
        lw r3, 0x70C(r1)
        halt
    )");
    auto fpu = std::make_shared<FpuPeripheral>();
    cpu.bus().attach(periph::kFpu, fpu);
    cpu.run();
    EXPECT_EQ(cpu.reg(3), std::bit_cast<std::uint32_t>(3.0f));
}

TEST(SabrePeripherals, DmuAndAccPorts) {
    DmuPortPeripheral dmu;
    EXPECT_EQ(dmu.read(0), 0u);
    DmuPortPeripheral::Sample s;
    s.gyro = {1, -2, 3};
    s.accel = {-100, 200, -300};
    s.seq = 9;
    dmu.host_push(s);
    EXPECT_EQ(dmu.read(0), 1u);
    EXPECT_EQ(static_cast<std::int32_t>(dmu.read(8)), -2);
    EXPECT_EQ(static_cast<std::int32_t>(dmu.read(16)), -100);
    EXPECT_EQ(dmu.read(28), 9u);
    dmu.write(0, 0);  // pop
    EXPECT_EQ(dmu.read(0), 0u);

    AccPortPeripheral acc;
    AccPortPeripheral::Sample a;
    a.t1x = 50000;
    a.t1y = 51000;
    a.t2 = 100000;
    acc.host_push(a);
    EXPECT_EQ(acc.read(0), 1u);
    EXPECT_EQ(acc.read(4), 50000u);
    EXPECT_EQ(acc.read(12), 100000u);
    acc.write(0, 0);
    EXPECT_EQ(acc.read(0), 0u);
}

TEST(SabrePeripherals, GuiDisplayList) {
    GuiPeripheral gui;
    gui.write(0x0, 10);
    gui.write(0x4, 20);
    gui.write(0x8, 110);
    gui.write(0xC, 120);
    gui.write(0x10, 0xFFFF);
    gui.write(0x14, 1);  // strobe
    ASSERT_EQ(gui.lines().size(), 1u);
    EXPECT_EQ(gui.lines()[0].x0, 10);
    EXPECT_EQ(gui.lines()[0].y1, 120);
}

TEST(SabrePeripherals, BusValidation) {
    SabreBus bus;
    EXPECT_THROW(bus.attach(0x42, std::make_shared<LedsPeripheral>()),
                 std::invalid_argument);
    bus.attach(0x100, std::make_shared<LedsPeripheral>());
    EXPECT_THROW(bus.attach(0x100, std::make_shared<LedsPeripheral>()),
                 std::invalid_argument);
    EXPECT_THROW((void)bus.read(0x900), std::out_of_range);
}

}  // namespace
