#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/scenario_library.hpp"
#include "system/fleet.hpp"

// Shared plumbing for the fleet-based suites (fleet_regression_test,
// fleet_golden_test, scenario_regression_test): the scenario x processor
// case matrix, its gtest parameter naming, and the envelope assertion.
// Keeping these in one place means a new processor mode or scenario rename
// cannot desynchronize which cases the suites cover.

namespace ob::testutil {

struct FleetCase {
    std::string scenario;
    system::BoresightSystem::Processor processor;
};

inline std::vector<FleetCase> all_library_cases() {
    std::vector<FleetCase> out;
    for (const auto& spec : sim::ScenarioLibrary::instance().all()) {
        out.push_back({spec.name, system::BoresightSystem::Processor::kNative});
        out.push_back({spec.name, system::BoresightSystem::Processor::kSabre});
    }
    return out;
}

inline std::string fleet_case_name(
    const ::testing::TestParamInfo<FleetCase>& info) {
    std::string n = info.param.scenario + "_" +
                    system::processor_name(info.param.processor);
    for (auto& c : n) {
        if (c == '-') c = '_';
    }
    return n;
}

/// Assert the completed job stayed inside its (possibly Sabre-scaled)
/// envelope, with the worst excursion per axis reported on failure.
inline void expect_inside_envelope(const system::FleetResult& r) {
    EXPECT_GT(r.trace.checked_points, 0u)
        << r.scenario << ": no samples after settle time";
    EXPECT_LE(r.trace.worst_roll_err_deg, r.envelope.roll_deg)
        << r.scenario << ": roll escaped the envelope";
    EXPECT_LE(r.trace.worst_pitch_err_deg, r.envelope.pitch_deg)
        << r.scenario << ": pitch escaped the envelope";
    if (r.envelope.check_yaw) {
        EXPECT_LE(r.trace.worst_yaw_err_deg, r.envelope.yaw_deg)
            << r.scenario << ": yaw escaped the envelope";
    }
    EXPECT_LE(r.result.residual_rms, r.envelope.residual_rms_max)
        << r.scenario << ": innovation RMS above bound";
    EXPECT_TRUE(r.within_envelope);
}

}  // namespace ob::testutil
