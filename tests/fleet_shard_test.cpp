// Shard/merge contract of the fleet batch partition (fleet_shard.hpp):
// the balanced plan partition, the self-describing artifact codec, and —
// the load-bearing claim — that shards merged in any order are BITWISE the
// single-process run, across shard counts including the degenerate 1/1 and
// plans smaller than the shard count.

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "system/fleet.hpp"
#include "system/fleet_shard.hpp"

namespace {

using namespace ob;
using system::FleetJob;
using system::FleetShardArtifact;

// Short-duration jobs keep each realization cheap (the container runs
// single-core); two scenarios x two seeds gives a 6-item plan whose
// partitions exercise uneven slice sizes.
[[nodiscard]] std::vector<FleetJob> small_batch() {
    FleetJob a;
    a.scenario = "static-level";
    a.duration_s = 20.0;
    a.seeds_per_job = 2;
    FleetJob b;
    b.scenario = "city-drive";
    b.duration_s = 20.0;
    b.seeds_per_job = 3;
    FleetJob c;
    c.scenario = "static-level";
    c.duration_s = 25.0;
    c.use_adaptive_tuner = true;
    return {a, b, c};
}

[[nodiscard]] std::string expect_throw_message(
    const std::function<void()>& fn) {
    try {
        fn();
    } catch (const std::exception& e) {
        return e.what();
    }
    ADD_FAILURE() << "expected an exception";
    return {};
}

TEST(ShardRange, BalancedContiguousPartition) {
    // 6 items over 4 shards: sizes 2,2,1,1 tiling [0, 6).
    std::size_t next = 0;
    for (std::size_t k = 0; k < 4; ++k) {
        const auto r = system::shard_range(6, k, 4);
        EXPECT_EQ(r.begin, next);
        EXPECT_GE(r.size(), 1u);
        EXPECT_LE(r.size(), 2u);
        next = r.end;
    }
    EXPECT_EQ(next, 6u);
}

TEST(ShardRange, PlanSmallerThanShardCountYieldsEmptyShards) {
    // 2 items over 5 shards: shards beyond the item count come out empty,
    // not invalid.
    std::size_t total = 0;
    for (std::size_t k = 0; k < 5; ++k) {
        const auto r = system::shard_range(2, k, 5);
        total += r.size();
        if (k >= 2) {
            EXPECT_EQ(r.size(), 0u);
        }
    }
    EXPECT_EQ(total, 2u);
}

TEST(ShardRange, RejectsBadIndexAndCount) {
    EXPECT_THROW((void)system::shard_range(6, 0, 0), std::invalid_argument);
    EXPECT_THROW((void)system::shard_range(6, 4, 4), std::invalid_argument);
}

TEST(ShardArtifact, EncodeDecodeRoundTrip) {
    const auto jobs = small_batch();
    const auto artifact = system::run_fleet_shard(jobs, 0, 2);
    const std::string bytes = system::encode_shard_artifact(artifact);
    const auto back = system::decode_shard_artifact(bytes);
    EXPECT_EQ(system::encode_shard_artifact(back), bytes);
    EXPECT_EQ(back.plan_digest, artifact.plan_digest);
    EXPECT_EQ(back.results.size(), artifact.results.size());
}

TEST(ShardArtifact, ZeroWorkShardRoundTrips) {
    // One 1-seed job over 4 shards: shards 1..3 carry no results but are
    // still valid artifacts and still merge.
    FleetJob only;
    only.scenario = "static-level";
    only.duration_s = 20.0;
    std::vector<FleetShardArtifact> shards;
    for (std::size_t k = 0; k < 4; ++k) {
        shards.push_back(system::run_fleet_shard({only}, k, 4));
        const std::string bytes = system::encode_shard_artifact(shards[k]);
        EXPECT_EQ(system::encode_shard_artifact(
                      system::decode_shard_artifact(bytes)),
                  bytes);
    }
    EXPECT_EQ(shards[1].results.size(), 0u);
    const auto merged = system::merge_shards(shards);
    const auto reference = system::run_fleet_shard({only}, 0, 1);
    EXPECT_EQ(system::encode_shard_artifact(merged),
              system::encode_shard_artifact(reference));
}

TEST(ShardArtifact, DecodeRejectsCorruption) {
    const auto artifact = system::run_fleet_shard(small_batch(), 0, 2);
    std::string bytes = system::encode_shard_artifact(artifact);

    std::string bad_magic = bytes;
    bad_magic[0] = 'X';
    EXPECT_THROW((void)system::decode_shard_artifact(bad_magic),
                 util::WireError);

    std::string bad_version = bytes;
    bad_version[8] = 99;  // format version byte after the 8-byte magic
    EXPECT_THROW((void)system::decode_shard_artifact(bad_version),
                 util::WireError);

    // Flip a digest byte: the header's plan identity no longer matches the
    // plan re-derived from the embedded jobs.
    std::string bad_digest = bytes;
    bad_digest[12] = static_cast<char>(bad_digest[12] ^ 0x5a);
    EXPECT_THROW((void)system::decode_shard_artifact(bad_digest),
                 util::WireError);

    EXPECT_THROW((void)system::decode_shard_artifact(
                     bytes.substr(0, bytes.size() - 3)),
                 util::WireError);
    EXPECT_THROW((void)system::decode_shard_artifact(bytes + "x"),
                 util::WireError);
}

TEST(ShardArtifact, SaveLoadRoundTrip) {
    const auto artifact = system::run_fleet_shard(small_batch(), 1, 3);
    const std::string path =
        ::testing::TempDir() + "ob_shard_roundtrip.bin";
    system::save_shard_artifact(path, artifact);
    const auto back = system::load_shard_artifact(path);
    EXPECT_EQ(system::encode_shard_artifact(back),
              system::encode_shard_artifact(artifact));
    std::remove(path.c_str());
}

TEST(ShardMerge, BitwiseIdenticalAcrossShardCounts) {
    const auto jobs = small_batch();
    const auto reference = system::run_fleet_shard(jobs, 0, 1);
    const std::string reference_bytes =
        system::encode_shard_artifact(reference);

    for (const std::size_t n : {1u, 2u, 4u}) {
        std::vector<FleetShardArtifact> shards;
        for (std::size_t k = 0; k < n; ++k) {
            shards.push_back(system::run_fleet_shard(jobs, k, n));
        }
        const auto merged = system::merge_shards(shards);
        EXPECT_EQ(system::encode_shard_artifact(merged), reference_bytes)
            << "merge of " << n << " shard(s) is not bitwise the 1/1 run";
    }
}

TEST(ShardMerge, OrderIndependent) {
    const auto jobs = small_batch();
    std::vector<FleetShardArtifact> shards;
    for (std::size_t k = 0; k < 3; ++k) {
        shards.push_back(system::run_fleet_shard(jobs, k, 3));
    }
    std::swap(shards[0], shards[2]);
    const auto merged = system::merge_shards(shards);
    EXPECT_EQ(system::encode_shard_artifact(merged),
              system::encode_shard_artifact(
                  system::run_fleet_shard(jobs, 0, 1)));
}

TEST(ShardMerge, RealizeMatchesFleetRunnerRun) {
    const auto jobs = small_batch();
    std::vector<FleetShardArtifact> shards;
    for (std::size_t k = 0; k < 2; ++k) {
        shards.push_back(system::run_fleet_shard(jobs, k, 2));
    }
    const auto realized =
        system::realize_shard_results(system::merge_shards(shards));
    const auto direct = system::FleetRunner{}.run(jobs);
    ASSERT_EQ(realized.size(), direct.size());
    for (std::size_t j = 0; j < direct.size(); ++j) {
        ASSERT_EQ(realized[j].seeds.size(), direct[j].seeds.size());
        for (std::size_t s = 0; s < direct[j].seeds.size(); ++s) {
            util::ByteWriter a, b;
            system::encode_seed_result(a, realized[j].seeds[s]);
            system::encode_seed_result(b, direct[j].seeds[s]);
            EXPECT_EQ(a.data(), b.data())
                << "job " << j << " seed " << s << " diverged";
        }
        EXPECT_EQ(realized[j].seed_stats.within_envelope,
                  direct[j].seed_stats.within_envelope);
        EXPECT_EQ(realized[j].result.residual_rms,
                  direct[j].result.residual_rms);
    }
}

TEST(ShardMerge, RejectsEmptyInput) {
    EXPECT_THROW((void)system::merge_shards({}), std::invalid_argument);
}

TEST(ShardMerge, RejectsMismatchedPlanDigest) {
    const auto jobs = small_batch();
    auto other = jobs;
    other[0].base_seed = 1234;  // different plan, same shapes
    std::vector<FleetShardArtifact> shards;
    shards.push_back(system::run_fleet_shard(jobs, 0, 2));
    shards.push_back(system::run_fleet_shard(other, 1, 2));
    const std::string msg = expect_throw_message(
        [&] { (void)system::merge_shards(shards); });
    EXPECT_NE(msg.find("different plan"), std::string::npos) << msg;
}

TEST(ShardMerge, RejectsOverlappingSlices) {
    const auto jobs = small_batch();
    std::vector<FleetShardArtifact> shards;
    shards.push_back(system::run_fleet_shard(jobs, 0, 2));
    shards.push_back(system::run_fleet_shard(jobs, 1, 2));
    shards.push_back(system::run_fleet_shard(jobs, 1, 2));  // duplicate
    const std::string msg = expect_throw_message(
        [&] { (void)system::merge_shards(shards); });
    EXPECT_NE(msg.find("overlap"), std::string::npos) << msg;
}

TEST(ShardMerge, RejectsGaps) {
    const auto jobs = small_batch();
    std::vector<FleetShardArtifact> shards;
    shards.push_back(system::run_fleet_shard(jobs, 0, 3));
    shards.push_back(system::run_fleet_shard(jobs, 2, 3));  // 1/3 missing
    const std::string msg = expect_throw_message(
        [&] { (void)system::merge_shards(shards); });
    EXPECT_NE(msg.find("covered by no shard"), std::string::npos) << msg;
}

TEST(ShardMerge, RealizeRequiresFullPlan) {
    const auto partial = system::run_fleet_shard(small_batch(), 0, 2);
    EXPECT_THROW((void)system::realize_shard_results(partial),
                 std::invalid_argument);
}

}  // namespace
