#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>

#include "math/rotation.hpp"
#include "sim/scenario_library.hpp"
#include "sim/trajectory.hpp"

namespace {

using namespace ob;
using sim::ScenarioLibrary;

TEST(ScenarioLibrary, HasAtLeastTenScenarios) {
    EXPECT_GE(ScenarioLibrary::instance().all().size(), 10u);
}

TEST(ScenarioLibrary, PaperScenariosPresent) {
    const auto& lib = ScenarioLibrary::instance();
    for (const char* name :
         {"static-level", "static-tilted", "city-drive", "highway-drive",
          "carpark-bump", "headlight-leveling"}) {
        EXPECT_NE(lib.find(name), nullptr) << name;
    }
}

TEST(ScenarioLibrary, NamesAreUniqueKebabCase) {
    std::set<std::string> seen;
    for (const auto& spec : ScenarioLibrary::instance().all()) {
        EXPECT_TRUE(seen.insert(spec.name).second)
            << "duplicate scenario name " << spec.name;
        EXPECT_FALSE(spec.name.empty());
        for (const char c : spec.name) {
            EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) ||
                        std::isdigit(static_cast<unsigned char>(c)) || c == '-')
                << spec.name << " contains '" << c << "'";
        }
    }
}

TEST(ScenarioLibrary, FindUnknownReturnsNullAndAtThrows) {
    const auto& lib = ScenarioLibrary::instance();
    EXPECT_EQ(lib.find("no-such-scenario"), nullptr);
    EXPECT_THROW((void)lib.at("no-such-scenario"), std::out_of_range);
}

TEST(ScenarioLibrary, SpecsAreInternallyConsistent) {
    for (const auto& spec : ScenarioLibrary::instance().all()) {
        SCOPED_TRACE(spec.name);
        EXPECT_FALSE(spec.description.empty());
        EXPECT_GT(spec.duration_s, 0.0);
        EXPECT_GT(spec.meas_noise_mps2, 0.0);
        EXPECT_GE(spec.angle_process_noise, 0.0);
        EXPECT_GE(spec.sabre_envelope_scale, 1.0);
        EXPECT_NE(spec.build, nullptr);
        // The envelope must leave room to actually be checked.
        EXPECT_LT(spec.envelope.settle_s, spec.duration_s);
        EXPECT_GT(spec.envelope.roll_deg, 0.0);
        EXPECT_GT(spec.envelope.pitch_deg, 0.0);
        if (spec.envelope.check_yaw) {
            EXPECT_GT(spec.envelope.yaw_deg, 0.0);
        }
        EXPECT_GT(spec.envelope.residual_rms_max, 0.0);
        if (spec.bump.enabled()) {
            EXPECT_GT(spec.bump.at_s, 0.0);
            EXPECT_LT(spec.bump.at_s + spec.envelope.settle_s,
                      spec.duration_s);
        }
    }
}

TEST(ScenarioLibrary, EveryScenarioBuildsAndSteps) {
    for (const auto& spec : ScenarioLibrary::instance().all()) {
        SCOPED_TRACE(spec.name);
        // Build short to keep this sweep fast; the builder must honour the
        // requested duration, truth and stated sample rate.
        const auto cfg = spec.build(10.0, spec.misalignment, 42);
        ASSERT_NE(cfg.profile, nullptr);
        EXPECT_GE(cfg.profile->duration(), 10.0);
        EXPECT_EQ(cfg.true_misalignment.roll, spec.misalignment.roll);
        sim::Scenario sc(cfg, 7);
        std::size_t steps = 0;
        while (auto s = sc.next()) ++steps;
        EXPECT_GE(steps, static_cast<std::size_t>(10.0 * cfg.sample_rate_hz));
    }
}

TEST(ScenarioLibrary, BuildersAreDeterministic) {
    for (const auto& spec : ScenarioLibrary::instance().all()) {
        SCOPED_TRACE(spec.name);
        sim::Scenario a(spec.build(5.0, spec.misalignment, 99), 13);
        sim::Scenario b(spec.build(5.0, spec.misalignment, 99), 13);
        for (int i = 0; i < 200; ++i) {
            auto sa = a.next(), sb = b.next();
            ASSERT_TRUE(sa && sb);
            EXPECT_TRUE(sa->dmu == sb->dmu) << "step " << i;
            EXPECT_TRUE(sa->adxl == sb->adxl) << "step " << i;
        }
    }
}

TEST(ScenarioLibrary, ScenarioSeedSeparatesNamesAndBaseSeeds) {
    const auto s1 = sim::scenario_seed("city-drive", 1);
    EXPECT_EQ(s1, sim::scenario_seed("city-drive", 1)) << "must be stable";
    EXPECT_NE(s1, sim::scenario_seed("highway-drive", 1));
    EXPECT_NE(s1, sim::scenario_seed("city-drive", 2));
    // Nearby base seeds must not produce correlated neighbours.
    EXPECT_NE(sim::scenario_seed("city-drive", 1) ^
                  sim::scenario_seed("city-drive", 2),
              sim::scenario_seed("city-drive", 2) ^
                  sim::scenario_seed("city-drive", 3));
}

TEST(ScenarioLibrary, BuildScenarioUsesSpecDefaults) {
    const auto& spec = ScenarioLibrary::instance().at("city-drive");
    const auto cfg = sim::build_scenario(spec, 5);
    ASSERT_NE(cfg.profile, nullptr);
    EXPECT_GE(cfg.profile->duration(), spec.duration_s);
    EXPECT_EQ(cfg.true_misalignment.pitch, spec.misalignment.pitch);
}

TEST(ScenarioLibrary, DriveSegmentBankRollsTheVehicle) {
    // The DriveSegment::bank mechanism in isolation: a vehicle parked on a
    // 10% superelevated road settles to atan(0.1) of roll; on flat road it
    // stays level.
    const sim::DriveSegment banked{.duration_s = 20.0, .bank = 0.1};
    const sim::DriveProfile on_bank({banked}, {}, "bank-test");
    EXPECT_NEAR(on_bank.state_at(10.0).attitude.roll, std::atan(0.1), 1e-3);

    const sim::DriveSegment flat{.duration_s = 20.0};
    const sim::DriveProfile on_flat({flat}, {}, "flat-test");
    EXPECT_NEAR(on_flat.state_at(10.0).attitude.roll, 0.0, 1e-9);
}

TEST(ScenarioLibrary, BankedCurveActuallyBanksTheRoad) {
    // The banked-curve scenario must exercise that path: during a sweeper
    // the vehicle roll includes the superelevation on top of (and opposing)
    // the suspension lean.
    const auto& spec = ScenarioLibrary::instance().at("banked-curve");
    const auto cfg = spec.build(60.0, spec.misalignment, 11);
    double max_roll = 0.0;
    for (double t = 0.0; t < 60.0; t += 0.1) {
        max_roll = std::max(max_roll,
                            std::abs(cfg.profile->state_at(t).attitude.roll));
    }
    EXPECT_GT(max_roll, math::deg2rad(1.5));
}

TEST(ScenarioLibrary, StressScenariosShapeTheirPhysics) {
    const auto& lib = ScenarioLibrary::instance();
    // Pothole grid and washboard gravel crank the road-noise model.
    EXPECT_GT(lib.at("pothole-grid")
                  .build(10.0, {}, 1)
                  .vibration.road_amp_per_sqrt_mps,
              sim::VibrationConfig{}.road_amp_per_sqrt_mps);
    EXPECT_GT(lib.at("washboard-gravel")
                  .build(10.0, {}, 1)
                  .vibration.road_bandwidth_hz,
              sim::VibrationConfig{}.road_bandwidth_hz);
    // Thermal soak accelerates the IMU bias walk.
    EXPECT_GT(lib.at("thermal-soak").build(10.0, {}, 1).imu_errors
                  .accel_bias_walk,
              sim::ImuErrorConfig{}.accel_bias_walk);
    // Headlight leveling assumes factory-calibrated instruments.
    EXPECT_EQ(lib.at("headlight-leveling").build(10.0, {}, 1).acc_errors
                  .bias_sigma,
              0.0);
    // Emergency brake must actually reach highway-adjacent speed and stop.
    const auto brake = lib.at("emergency-brake").build(60.0, {}, 3);
    double vmax = 1e9, seen_max = 0.0;
    for (double t = 10.0; t < 60.0; t += 0.1) {
        const double v = brake.profile->state_at(t).speed;
        seen_max = std::max(seen_max, v);
        vmax = std::min(vmax, v);
    }
    EXPECT_GT(seen_max, 10.0) << "never reached braking speed";
    EXPECT_LT(vmax, 0.5) << "never came to rest";
}

TEST(ScenarioLibrary, OnlyCarparkBumpHasABump) {
    for (const auto& spec : ScenarioLibrary::instance().all()) {
        if (spec.name == "carpark-bump") {
            EXPECT_TRUE(spec.bump.enabled());
        } else {
            EXPECT_FALSE(spec.bump.enabled()) << spec.name;
        }
    }
}

}  // namespace
