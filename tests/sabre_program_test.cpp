#include <gtest/gtest.h>

#include "sabre/assembler.hpp"
#include "sabre/cpu.hpp"
#include "util/rng.hpp"

// Program-level Sabre tests: recursion, stack discipline, memory-mapped
// polling patterns, and assembler/disassembler fuzz round-trips — the
// behaviours real firmware depends on beyond single-instruction semantics.

namespace {

using namespace ob::sabre;
using ob::util::Rng;

TEST(SabreProgram, RecursiveFactorialViaStack) {
    // Classic stack-frame recursion: factorial(8) with lr/arg saved on a
    // descending stack.
    SabreCpu cpu(assemble(R"(
        li sp, 0x10000        ; top of data memory
        addi r1, zero, 8      ; argument
        call fact
        halt
    fact:
        addi r2, zero, 1
        bgeu r2, r1, base     ; n <= 1 -> return 1
        addi sp, sp, -8
        sw lr, 0(sp)
        sw r1, 4(sp)
        addi r1, r1, -1
        call fact             ; r1 = fact(n-1)
        lw r2, 4(sp)          ; reload n
        lw lr, 0(sp)
        addi sp, sp, 8
        mul r1, r1, r2
        ret
    base:
        addi r1, zero, 1
        ret
    )"));
    cpu.run();
    EXPECT_EQ(cpu.reg(1), 40320u);  // 8!
    EXPECT_EQ(cpu.reg(static_cast<std::size_t>(kStackRegister)), 0x10000u)
        << "stack must be balanced on return";
}

TEST(SabreProgram, MemcpyLoop) {
    SabreCpu cpu(assemble(R"(
        ; copy 16 words from 0x100 to 0x200
        addi r1, zero, 0x100
        addi r2, zero, 0x200
        addi r3, zero, 16
    copy:
        lw r4, 0(r1)
        sw r4, 0(r2)
        addi r1, r1, 4
        addi r2, r2, 4
        addi r3, r3, -1
        bne r3, zero, copy
        halt
    )"));
    for (std::uint32_t i = 0; i < 16; ++i)
        cpu.store_data(0x100 + 4 * i, 0xA0000000u + i);
    cpu.run();
    for (std::uint32_t i = 0; i < 16; ++i)
        EXPECT_EQ(cpu.load_data(0x200 + 4 * i), 0xA0000000u + i);
}

TEST(SabreProgram, BubbleSortWords) {
    SabreCpu cpu(assemble(R"(
        .equ BASE 0x400
        .equ N 8
    outer:
        addi r1, zero, 0      ; swapped flag
        addi r2, zero, BASE   ; ptr
        addi r3, zero, 7      ; N-1 comparisons
    inner:
        lw r4, 0(r2)
        lw r5, 4(r2)
        bge r5, r4, noswap    ; signed compare
        sw r5, 0(r2)
        sw r4, 4(r2)
        addi r1, zero, 1
    noswap:
        addi r2, r2, 4
        addi r3, r3, -1
        bne r3, zero, inner
        bne r1, zero, outer
        halt
    )"));
    const std::int32_t input[8] = {42, -7, 0, 99, -100, 7, 7, 1};
    for (std::uint32_t i = 0; i < 8; ++i)
        cpu.store_data(0x400 + 4 * i, static_cast<std::uint32_t>(input[i]));
    cpu.run(10'000'000);
    std::int32_t prev = INT32_MIN;
    for (std::uint32_t i = 0; i < 8; ++i) {
        const auto v = static_cast<std::int32_t>(cpu.load_data(0x400 + 4 * i));
        EXPECT_GE(v, prev) << "position " << i;
        prev = v;
    }
}

TEST(SabreProgram, PollingLoopConsumesFifo) {
    // The firmware's core idiom: poll a smart-port status register, drain
    // samples, accumulate.
    SabreCpu cpu(assemble(R"(
        lui r1, 0x20000
        addi r5, zero, 0      ; sum of samples
        addi r6, zero, 5      ; expected count
    wait:
        lw r2, 0x900(r1)      ; DMU status
        beq r2, zero, wait
        lw r3, 0x910(r1)      ; accel x register
        add r5, r5, r3
        sw zero, 0x900(r1)    ; pop
        addi r6, r6, -1
        bne r6, zero, wait
        halt
    )"));
    auto port = std::make_shared<DmuPortPeripheral>();
    cpu.bus().attach(periph::kDmuPort, port);
    for (int i = 1; i <= 5; ++i) {
        DmuPortPeripheral::Sample s;
        s.accel[0] = i * 10;
        port->host_push(s);
    }
    cpu.run();
    EXPECT_EQ(cpu.reg(5), 10u + 20 + 30 + 40 + 50);
    EXPECT_EQ(port->pending(), 0u);
}

TEST(SabreProgram, CycleBudgetStopsRunawayLoop) {
    SabreCpu cpu(assemble(R"(
    spin:
        j spin
    )"));
    const std::size_t executed = cpu.run(/*max_cycles=*/1000);
    EXPECT_FALSE(cpu.halted());
    // Stop-at-or-before: the budget is a hard ceiling, never overshot by
    // the final instruction (each jal here costs 2 cycles -> exactly 1000).
    EXPECT_LE(cpu.cycles(), 1000u);
    EXPECT_EQ(cpu.cycles(), 1000u);
    EXPECT_EQ(executed, 500u);
    // A second run from the stopped state picks up where it left off and
    // still respects the (absolute) budget.
    (void)cpu.run(/*max_cycles=*/1500);
    EXPECT_EQ(cpu.cycles(), 1500u);
}

// Assembler/disassembler fuzz: assemble a random-but-valid program, then
// verify every word disassembles and re-encodes to the identical bits.
class SabreFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SabreFuzzTest, DisassembleReassembleRoundTrip) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
    std::string src;
    const char* templates[] = {
        "add r%d, r%d, r%d",  "sub r%d, r%d, r%d",  "mul r%d, r%d, r%d",
        "and r%d, r%d, r%d",  "xor r%d, r%d, r%d",
    };
    char line[64];
    for (int i = 0; i < 200; ++i) {
        if (rng.chance(0.3)) {
            std::snprintf(line, sizeof line, "addi r%d, r%d, %d",
                          static_cast<int>(rng.uniform_int(0, 15)),
                          static_cast<int>(rng.uniform_int(0, 15)),
                          static_cast<int>(rng.uniform_int(-1000, 1000)));
        } else if (rng.chance(0.2)) {
            std::snprintf(line, sizeof line, "lw r%d, %d(r%d)",
                          static_cast<int>(rng.uniform_int(0, 15)),
                          static_cast<int>(rng.uniform_int(0, 256) * 4),
                          static_cast<int>(rng.uniform_int(0, 15)));
        } else {
            std::snprintf(line, sizeof line,
                          templates[rng.uniform_int(0, 4)],
                          static_cast<int>(rng.uniform_int(0, 15)),
                          static_cast<int>(rng.uniform_int(0, 15)),
                          static_cast<int>(rng.uniform_int(0, 15)));
        }
        src += line;
        src += '\n';
    }
    src += "halt\n";

    const Program p1 = assemble(src);
    // Disassemble everything and assemble the disassembly.
    std::string round;
    for (const auto w : p1.words) round += disassemble(w) + "\n";
    const Program p2 = assemble(round);
    ASSERT_EQ(p2.words.size(), p1.words.size());
    for (std::size_t i = 0; i < p1.words.size(); ++i)
        EXPECT_EQ(p2.words[i], p1.words[i]) << "word " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SabreFuzzTest, ::testing::Range(0, 10));

}  // namespace
