#include <gtest/gtest.h>

#include <cmath>

#include "core/boresight_ekf.hpp"
#include "core/calibration.hpp"
#include "core/residual_monitor.hpp"
#include "math/rotation.hpp"
#include "sim/scenario.hpp"
#include "system/experiment.hpp"

// End-to-end physics validation: simulated vehicle + sensor error models +
// wire-format quantization, decoded exactly as the deployed system would,
// driving the fusion filter. These tests assert the paper's headline
// claims hold in this reproduction.

namespace {

using namespace ob;
using core::BoresightConfig;
using core::BoresightEkf;
using math::deg2rad;
using math::EulerAngles;
using math::rad2deg;
using math::Vec2;
using math::Vec3;

/// Decode one scenario step into SI measurements (what the deployed
/// firmware does with the serial payloads).
struct DecodedStep {
    Vec3 f_body;
    Vec2 z;
};

DecodedStep decode(const sim::Scenario& sc, const sim::Scenario::Step& s) {
    DecodedStep out;
    for (std::size_t i = 0; i < 3; ++i)
        out.f_body[i] = sc.dmu_scale().raw_to_accel(s.dmu.accel[i]);
    const auto [ax, ay] = comm::adxl_decode(s.adxl, sc.adxl_config());
    out.z = Vec2{ax, ay};
    return out;
}

/// Paper §11 procedure: calibrate on a level platform at known (zero)
/// misalignment, then run the real scenario with the bias subtracted.
Vec2 calibrate_bias(std::uint64_t seed, double duration_s = 60.0) {
    auto cfg = sim::ScenarioConfig::static_level(duration_s, EulerAngles{});
    sim::Scenario sc(cfg, seed);
    core::CalibrationAccumulator cal;
    while (auto s = sc.next()) {
        const auto d = decode(sc, *s);
        cal.add(d.f_body, d.z);
    }
    return cal.bias();
}

TEST(IntegrationFusion, StaticTiltedRecoversAllAxes) {
    const std::uint64_t seed = 2025;
    const Vec2 bias = calibrate_bias(seed);

    const EulerAngles truth = EulerAngles::from_deg(1.5, -2.0, 2.5);
    // Tilted platform makes yaw observable (paper §11.1).
    auto cfg = sim::ScenarioConfig::static_tilted(
        300.0, truth, EulerAngles::from_deg(12.0, 8.0, 0.0));
    sim::Scenario sc(cfg, seed);

    BoresightConfig fcfg;
    fcfg.meas_noise_mps2 = 0.01;
    BoresightEkf ekf(fcfg);
    while (auto s = sc.next()) {
        const auto d = decode(sc, *s);
        (void)ekf.step(d.f_body, d.z - bias);
    }

    const EulerAngles est = ekf.misalignment();
    EXPECT_NEAR(rad2deg(est.roll), 1.5, 0.25);
    EXPECT_NEAR(rad2deg(est.pitch), -2.0, 0.25);
    EXPECT_NEAR(rad2deg(est.yaw), 2.5, 0.6);
    // Paper: sub-0.1 degree class 3-sigma on observable axes after 300 s.
    const Vec3 s3 = ekf.misalignment_sigma3();
    EXPECT_LT(rad2deg(s3[0]), 0.3);
    EXPECT_LT(rad2deg(s3[1]), 0.3);
}

TEST(IntegrationFusion, StaticLevelRollPitchOnly) {
    const std::uint64_t seed = 77;
    const Vec2 bias = calibrate_bias(seed);
    const EulerAngles truth = EulerAngles::from_deg(2.0, 1.0, 3.0);
    auto cfg = sim::ScenarioConfig::static_level(300.0, truth);
    sim::Scenario sc(cfg, seed);
    BoresightEkf ekf{BoresightConfig{}};
    while (auto s = sc.next()) {
        const auto d = decode(sc, *s);
        (void)ekf.step(d.f_body, d.z - bias);
    }
    EXPECT_NEAR(rad2deg(ekf.misalignment().roll), 2.0, 0.25);
    EXPECT_NEAR(rad2deg(ekf.misalignment().pitch), 1.0, 0.25);
    // Yaw unobservable on the level platform: the filter must NOT have
    // recovered the injected 3 degrees, and its 3-sigma must stay at
    // least several times wider than the observable axes'.
    const Vec3 s3 = ekf.misalignment_sigma3();
    EXPECT_GT(rad2deg(std::abs(ekf.misalignment().yaw - deg2rad(3.0))), 1.5);
    EXPECT_GT(s3[2], 5.0 * s3[0]);
    EXPECT_GT(s3[2], 5.0 * s3[1]);
}

TEST(IntegrationFusion, DynamicCityDriveConvergesWithRetunedNoise) {
    const std::uint64_t seed = 404;
    const Vec2 bias = calibrate_bias(seed);
    const EulerAngles truth = EulerAngles::from_deg(-1.0, 2.0, -2.0);
    auto cfg = sim::ScenarioConfig::dynamic_city(300.0, truth, /*seed=*/5);
    sim::Scenario sc(cfg, seed);

    BoresightConfig fcfg;
    fcfg.meas_noise_mps2 = 0.02;  // paper: >= 0.015 when moving
    BoresightEkf ekf(fcfg);
    while (auto s = sc.next()) {
        const auto d = decode(sc, *s);
        (void)ekf.step(d.f_body, d.z - bias);
    }
    const EulerAngles est = ekf.misalignment();
    EXPECT_NEAR(rad2deg(est.roll), -1.0, 0.4);
    EXPECT_NEAR(rad2deg(est.pitch), 2.0, 0.4);
    EXPECT_NEAR(rad2deg(est.yaw), -2.0, 0.8);
}

TEST(IntegrationFusion, MovingVehicleInflatesResidualsUnderStaticTuning) {
    // Figure 8 reproduction at test scale: static tuning (R = 0.003) on a
    // moving vehicle produces 3-sigma exceedances far beyond the ~0.3%/1%
    // a consistent filter shows; retuned (R = 0.02) restores consistency.
    const std::uint64_t seed = 31337;
    const Vec2 bias = calibrate_bias(seed);
    const EulerAngles truth = EulerAngles::from_deg(1.0, -1.0, 1.0);

    const auto run = [&](double r_sigma) {
        auto cfg = sim::ScenarioConfig::dynamic_city(120.0, truth, 9);
        sim::Scenario sc(cfg, seed);
        BoresightConfig fcfg;
        fcfg.meas_noise_mps2 = r_sigma;
        BoresightEkf ekf(fcfg);
        core::ResidualMonitor mon;
        std::size_t k = 0;
        while (auto s = sc.next()) {
            const auto d = decode(sc, *s);
            const auto up = ekf.step(d.f_body, d.z - bias);
            if (++k > 1000) mon.add(up.residual, up.sigma3);
        }
        return mon.exceedance_rate();
    };

    const double undertuned = run(0.003);
    const double retuned = run(0.02);
    EXPECT_GT(undertuned, 0.05);
    EXPECT_LT(retuned, 0.02);
    EXPECT_GT(undertuned, 5.0 * retuned);
}

TEST(IntegrationFusion, StaticResidualsStayInsideEnvelope) {
    // Figure 8 top panel: static run residuals well within 3-sigma.
    const std::uint64_t seed = 12;
    const Vec2 bias = calibrate_bias(seed);
    auto cfg =
        sim::ScenarioConfig::static_level(120.0, EulerAngles::from_deg(1, 1, 0));
    sim::Scenario sc(cfg, seed);
    BoresightConfig fcfg;
    fcfg.meas_noise_mps2 = 0.0075;
    BoresightEkf ekf(fcfg);
    core::ResidualMonitor mon;
    std::size_t k = 0;
    while (auto s = sc.next()) {
        const auto d = decode(sc, *s);
        const auto up = ekf.step(d.f_body, d.z - bias);
        if (++k > 1000) mon.add(up.residual, up.sigma3);
    }
    EXPECT_LT(mon.exceedance_rate(), 0.02);
}

TEST(IntegrationFusion, TwoDynamicRunsAgree) {
    // Table 1 bottom: "very close agreement between the tests" across two
    // different drives of the same vehicle/misalignment.
    const EulerAngles truth = EulerAngles::from_deg(1.2, -0.8, 1.5);
    const auto run_drive = [&](std::uint64_t drive_seed) {
        const std::uint64_t sensor_seed = 555;  // same physical instruments
        const Vec2 bias = calibrate_bias(sensor_seed);
        auto cfg = sim::ScenarioConfig::dynamic_city(300.0, truth, drive_seed);
        sim::Scenario sc(cfg, sensor_seed);
        BoresightConfig fcfg;
        fcfg.meas_noise_mps2 = 0.02;
        BoresightEkf ekf(fcfg);
        while (auto s = sc.next()) {
            const auto d = decode(sc, *s);
            (void)ekf.step(d.f_body, d.z - bias);
        }
        return ekf.misalignment();
    };
    const EulerAngles a = run_drive(21);
    const EulerAngles b = run_drive(22);
    EXPECT_NEAR(rad2deg(a.roll), rad2deg(b.roll), 0.3);
    EXPECT_NEAR(rad2deg(a.pitch), rad2deg(b.pitch), 0.3);
    EXPECT_NEAR(rad2deg(a.yaw), rad2deg(b.yaw), 0.6);
}

TEST(IntegrationFusion, BiasAugmentedFilterSelfCalibratesWhileDriving) {
    // Extension beyond the paper's procedure (its "future work:
    // self-aligning and self-referencing methods"): skip the calibration
    // phase entirely and let the 5-state filter estimate the ACC bias
    // during a dynamic drive.
    const EulerAngles truth = EulerAngles::from_deg(1.0, 1.5, -1.0);
    // Figure-eight: sustained lateral+longitudinal excitation, the richest
    // geometry for separating bias from angle.
    auto cfg = sim::ScenarioConfig::dynamic_city(300.0, truth, 3);
    cfg.profile = std::make_shared<sim::DriveProfile>(
        sim::DriveProfile::figure_eight(300.0));
    sim::Scenario sc(cfg, 999);
    BoresightConfig fcfg;
    fcfg.meas_noise_mps2 = 0.02;
    fcfg.estimate_bias = true;
    BoresightEkf ekf(fcfg);
    while (auto s = sc.next()) {
        const auto d = decode(sc, *s);
        (void)ekf.step(d.f_body, d.z);
    }
    // Bias-vs-tilt is only second-order observable on a planar drive
    // (gravity stays along body z), so self-calibrated accuracy is a
    // degree-class result, not the paper's calibrated 0.1-degree class.
    EXPECT_NEAR(rad2deg(ekf.misalignment().roll), 1.0, 1.0);
    EXPECT_NEAR(rad2deg(ekf.misalignment().pitch), 1.5, 1.0);
    EXPECT_NEAR(rad2deg(ekf.misalignment().yaw), -1.0, 1.5);
    // The *observable combinations* are nailed even though the degenerate
    // direction wanders: g*pitch_err cancels bias_x_err (and -g*roll_err
    // cancels bias_y_err), because gravity stays along body z.
    const double pitch_err = ekf.misalignment().pitch - truth.pitch;
    const double roll_err = ekf.misalignment().roll - truth.roll;
    const double bx_err = ekf.bias()[0] - sc.acc_model().bias_x();
    const double by_err = ekf.bias()[1] - sc.acc_model().bias_y();
    EXPECT_NEAR(9.80665 * pitch_err + bx_err, 0.0, 0.03);
    EXPECT_NEAR(-9.80665 * roll_err + by_err, 0.0, 0.03);
}

TEST(IntegrationFusion, LeverArmBiasAndCompensation) {
    // The ACC rides 0.8 m ahead and 0.4 m above the IMU. During a
    // figure-eight the centripetal acceleration of that offset (~0.05
    // m/s^2 sustained) aliases into the misalignment estimate unless the
    // gyro-driven lever-arm compensation is on — the reason the DMU's
    // rate channels exist in the fusion.
    const math::Vec3 lever{0.8, 0.0, -0.4};
    const EulerAngles truth = EulerAngles::from_deg(1.0, -1.0, 1.0);

    const auto run = [&](bool compensate) {
        auto cfg = sim::ScenarioConfig::dynamic_city(240.0, truth, 3);
        cfg.profile = std::make_shared<sim::DriveProfile>(
            sim::DriveProfile::figure_eight(240.0));
        cfg.acc_lever_arm = lever;
        cfg.acc_errors.bias_sigma = 0.0;
        cfg.imu_errors.accel_bias_sigma = 0.0;
        sim::Scenario sc(cfg, 77);
        core::BoresightConfig fcfg;
        fcfg.meas_noise_mps2 = 0.02;
        if (compensate) fcfg.lever_arm = lever;
        core::BoresightEkf ekf(fcfg);
        Vec3 prev{};
        Vec3 wdot{};
        bool have_prev = false;
        while (auto s = sc.next()) {
            const auto d = ob::system::decode_step(sc, *s);
            if (have_prev) {
                const Vec3 raw = (d.omega - prev) * 100.0;  // 100 Hz
                wdot += (raw - wdot) * 0.2;
            }
            prev = d.omega;
            have_prev = true;
            (void)ekf.step_with_rates(d.f_body, d.omega, wdot, d.acc_xy);
        }
        return ekf.misalignment();
    };

    const EulerAngles raw = run(false);
    const EulerAngles comp = run(true);
    const double raw_err = std::abs(rad2deg(raw.roll) - 1.0) +
                           std::abs(rad2deg(raw.pitch) + 1.0) +
                           std::abs(rad2deg(raw.yaw) - 1.0);
    const double comp_err = std::abs(rad2deg(comp.roll) - 1.0) +
                            std::abs(rad2deg(comp.pitch) + 1.0) +
                            std::abs(rad2deg(comp.yaw) - 1.0);
    EXPECT_GT(raw_err, 2.0 * comp_err)
        << "uncompensated lever arm must bias the estimate (raw=" << raw_err
        << " comp=" << comp_err << ")";
    EXPECT_LT(comp_err, 0.5);
}

TEST(IntegrationFusion, CalibrationNoiseEstimateMatchesStaticTuningRange) {
    // The calibration pass also measures the per-sample noise floor; it
    // must land in the paper's static tuning range (0.003-0.01 m/s²-ish).
    auto cfg = sim::ScenarioConfig::static_level(60.0, EulerAngles{});
    sim::Scenario sc(cfg, 1234);
    core::CalibrationAccumulator cal;
    while (auto s = sc.next()) {
        const auto d = decode(sc, *s);
        cal.add(d.f_body, d.z);
    }
    EXPECT_GT(cal.noise_sigma(), 0.002);
    EXPECT_LT(cal.noise_sigma(), 0.03);
}

}  // namespace
