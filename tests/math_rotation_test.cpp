#include <gtest/gtest.h>

#include <cmath>

#include "math/matrix.hpp"
#include "math/rotation.hpp"
#include "util/rng.hpp"

namespace {

using namespace ob::math;
using ob::util::Rng;

bool is_orthonormal(const Mat3& m, double tol = 1e-12) {
    return ((m * m.transposed()) - Mat3::identity()).max_abs() < tol;
}

TEST(Rotation, WrapAngle) {
    EXPECT_NEAR(wrap_angle(0.0), 0.0, 1e-15);
    EXPECT_NEAR(wrap_angle(kPi), kPi, 1e-15);          // pi maps to itself
    EXPECT_NEAR(wrap_angle(-kPi), kPi, 1e-15);         // -pi maps to +pi
    EXPECT_NEAR(wrap_angle(3.0 * kPi), kPi, 1e-12);
    EXPECT_NEAR(wrap_angle(2.0 * kPi + 0.25), 0.25, 1e-12);
    EXPECT_NEAR(wrap_angle(-2.0 * kPi - 0.25), -0.25, 1e-12);
}

TEST(Rotation, ElementaryRotationsAreOrthonormal) {
    for (const double a : {-2.0, -0.5, 0.0, 0.7, 3.0}) {
        EXPECT_TRUE(is_orthonormal(rot_x(a)));
        EXPECT_TRUE(is_orthonormal(rot_y(a)));
        EXPECT_TRUE(is_orthonormal(rot_z(a)));
    }
}

TEST(Rotation, PassiveConvention) {
    // Frame B is frame A rotated +90 deg about z. The A-frame vector
    // (1,0,0) has B-frame coordinates (0,-1,0): B's x axis points along
    // A's y, so A's x axis is along B's -y.
    const Mat3 c = rot_z(deg2rad(90.0));
    const Vec3 v = c * Vec3{1, 0, 0};
    EXPECT_NEAR(v[0], 0.0, 1e-15);
    EXPECT_NEAR(v[1], -1.0, 1e-15);
    EXPECT_NEAR(v[2], 0.0, 1e-15);
}

TEST(Rotation, DcmGravityExample) {
    // A sensor pitched up by +theta sees gravity (0,0,-g) acquire a
    // positive x' component... verify against first principles:
    // C = Ry(theta) passive; (C*g)_x = -sin(theta)*(-g)*... compute directly.
    const double theta = deg2rad(5.0);
    const Vec3 g_body{0, 0, -9.81};
    const Vec3 g_sensor = rot_y(theta) * g_body;
    EXPECT_NEAR(g_sensor[0], 9.81 * std::sin(theta), 1e-12);
    EXPECT_NEAR(g_sensor[2], -9.81 * std::cos(theta), 1e-12);
}

TEST(Rotation, EulerDcmRoundTripKnown) {
    const EulerAngles e = EulerAngles::from_deg(3.0, -2.0, 5.0);
    const EulerAngles back = euler_from_dcm(dcm_from_euler(e));
    EXPECT_NEAR(back.roll, e.roll, 1e-12);
    EXPECT_NEAR(back.pitch, e.pitch, 1e-12);
    EXPECT_NEAR(back.yaw, e.yaw, 1e-12);
}

TEST(Rotation, GimbalLockDoesNotBlowUp) {
    const EulerAngles e{0.3, kPi / 2.0, -0.2};
    const Mat3 c = dcm_from_euler(e);
    const EulerAngles back = euler_from_dcm(c);
    // Representation is degenerate; the recovered DCM must still match.
    EXPECT_LT((dcm_from_euler(back) - c).max_abs(), 1e-9);
}

TEST(Rotation, SmallAngleDcmFirstOrderAccuracy) {
    const Vec3 rho{0.01, -0.02, 0.015};
    const Mat3 exact = dcm_from_euler(EulerAngles::from_vec(rho));
    const Mat3 approx = small_angle_dcm(rho);
    // Error should be second order: ~|rho|^2.
    EXPECT_LT((exact - approx).max_abs(), 2.0 * 0.02 * 0.02);
}

TEST(Quaternion, IdentityAndNormalization) {
    const auto q = Quaternion::identity();
    EXPECT_LT((q.to_dcm() - Mat3::identity()).max_abs(), 1e-15);
    EXPECT_THROW((void)Quaternion(0, 0, 0, 0).normalized(), std::domain_error);
}

TEST(Quaternion, AxisAngleMatchesElementary) {
    const double a = 0.7;
    const auto q = Quaternion::from_axis_angle(Vec3{0, 0, 1}, a);
    EXPECT_LT((q.to_dcm() - rot_z(a)).max_abs(), 1e-12);
}

TEST(Quaternion, CompositionConvention) {
    // Documented: to_dcm(a*b) == to_dcm(b) * to_dcm(a).
    const auto qa = Quaternion::from_euler(EulerAngles::from_deg(10, 0, 0));
    const auto qb = Quaternion::from_euler(EulerAngles::from_deg(0, 20, 5));
    const Mat3 lhs = (qa * qb).to_dcm();
    const Mat3 rhs = qb.to_dcm() * qa.to_dcm();
    EXPECT_LT((lhs - rhs).max_abs(), 1e-12);
}

TEST(Quaternion, AngleToSelfIsZero) {
    const auto q = Quaternion::from_euler(EulerAngles::from_deg(1, 2, 3));
    EXPECT_NEAR(q.angle_to(q), 0.0, 1e-7);
}

TEST(Quaternion, AngleToKnownRotation) {
    const auto qa = Quaternion::identity();
    const auto qb = Quaternion::from_axis_angle(Vec3{1, 0, 0}, 0.5);
    EXPECT_NEAR(qa.angle_to(qb), 0.5, 1e-12);
}

// Property sweeps over random orientations.
class RotationPropertyTest : public ::testing::TestWithParam<int> {};

EulerAngles random_euler(Rng& rng) {
    return {rng.uniform(-kPi, kPi), rng.uniform(-kPi / 2 + 0.05, kPi / 2 - 0.05),
            rng.uniform(-kPi, kPi)};
}

TEST_P(RotationPropertyTest, DcmIsOrthonormalWithUnitDeterminant) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const Mat3 c = dcm_from_euler(random_euler(rng));
    EXPECT_TRUE(is_orthonormal(c));
    EXPECT_NEAR(determinant(c), 1.0, 1e-12);
}

TEST_P(RotationPropertyTest, EulerRoundTrip) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
    const EulerAngles e = random_euler(rng);
    const EulerAngles back = euler_from_dcm(dcm_from_euler(e));
    EXPECT_NEAR(back.roll, e.roll, 1e-10);
    EXPECT_NEAR(back.pitch, e.pitch, 1e-10);
    EXPECT_NEAR(back.yaw, e.yaw, 1e-10);
}

TEST_P(RotationPropertyTest, QuaternionDcmRoundTrip) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 200);
    const Mat3 c = dcm_from_euler(random_euler(rng));
    const Mat3 back = Quaternion::from_dcm(c).to_dcm();
    EXPECT_LT((back - c).max_abs(), 1e-12);
}

TEST_P(RotationPropertyTest, QuaternionEulerRoundTrip) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 300);
    const EulerAngles e = random_euler(rng);
    const EulerAngles back = Quaternion::from_euler(e).to_euler();
    EXPECT_NEAR(back.roll, e.roll, 1e-10);
    EXPECT_NEAR(back.pitch, e.pitch, 1e-10);
    EXPECT_NEAR(back.yaw, e.yaw, 1e-10);
}

TEST_P(RotationPropertyTest, TransformPreservesNorm) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 400);
    const auto q = Quaternion::from_euler(random_euler(rng));
    const Vec3 v{rng.gaussian(), rng.gaussian(), rng.gaussian()};
    EXPECT_NEAR(norm(q.transform(v)), norm(v), 1e-12);
}

TEST_P(RotationPropertyTest, ConjugateInvertsTransform) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
    const auto q = Quaternion::from_euler(random_euler(rng));
    const Vec3 v{rng.gaussian(), rng.gaussian(), rng.gaussian()};
    const Vec3 back = q.conjugate().transform(q.transform(v));
    EXPECT_LT((back - v).max_abs(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RotationPropertyTest, ::testing::Range(0, 30));

}  // namespace
