#include <gtest/gtest.h>

#include "hcl/hcl.hpp"

namespace {

using namespace ob::hcl;

TEST(Signal, TwoPhaseUpdate) {
    Simulation sim;
    auto& s = sim.signal<int>(7);
    LambdaProcess writer("w", [&](std::uint64_t) { s.write(42); });
    sim.add(writer);
    EXPECT_EQ(s.read(), 7);
    sim.step();
    EXPECT_EQ(s.read(), 42);
}

TEST(Signal, NoRaceBetweenProcesses) {
    // A reader that samples a signal the writer updates in the same cycle
    // must observe the OLD value regardless of registration order.
    Simulation sim;
    auto& s = sim.signal<int>(1);
    int observed = -1;
    LambdaProcess writer("w", [&](std::uint64_t) { s.write(2); });
    LambdaProcess reader("r", [&](std::uint64_t) { observed = s.read(); });
    sim.add(writer);
    sim.add(reader);
    sim.step();
    EXPECT_EQ(observed, 1) << "reader must see pre-edge value";
    sim.step();
    EXPECT_EQ(observed, 2);
}

TEST(Simulation, CycleCounting) {
    Simulation sim;
    sim.run(10);
    EXPECT_EQ(sim.cycles(), 10u);
    sim.step();
    EXPECT_EQ(sim.cycles(), 11u);
}

TEST(Simulation, RunUntilStopsOnPredicate) {
    Simulation sim;
    auto& counter = sim.signal<int>(0);
    LambdaProcess inc("inc",
                      [&](std::uint64_t) { counter.write(counter.read() + 1); });
    sim.add(inc);
    const std::size_t n =
        sim.run_until([&] { return counter.read() >= 5; }, 1000);
    EXPECT_EQ(n, 5u);
    EXPECT_EQ(counter.read(), 5);
}

TEST(Simulation, RunUntilHonorsMaxCycles) {
    Simulation sim;
    const std::size_t n = sim.run_until([] { return false; }, 37);
    EXPECT_EQ(n, 37u);
}

TEST(Sequencer, StepsRunOnePerCycle) {
    Simulation sim;
    std::vector<int> order;
    Sequencer seq("test");
    seq.then([&](std::uint64_t) {
           order.push_back(1);
           return true;
       })
        .then([&](std::uint64_t) {
            order.push_back(2);
            return true;
        })
        .then([&](std::uint64_t) {
            order.push_back(3);
            return true;
        });
    sim.add(seq);
    sim.run(2);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_FALSE(seq.done());
    sim.run(1);
    EXPECT_TRUE(seq.done());
    sim.run(5);  // no further effect
    EXPECT_EQ(order.size(), 3u);
}

TEST(Sequencer, MultiCycleStepHoldsUntilFinished) {
    Simulation sim;
    int polls = 0;
    Sequencer seq;
    seq.then([&](std::uint64_t) { return ++polls == 3; });
    sim.add(seq);
    sim.run(2);
    EXPECT_FALSE(seq.done());
    sim.run(1);
    EXPECT_TRUE(seq.done());
    EXPECT_EQ(polls, 3);
}

TEST(Sequencer, RestartReplays) {
    Simulation sim;
    int runs = 0;
    Sequencer seq;
    seq.then([&](std::uint64_t) {
        ++runs;
        return true;
    });
    sim.add(seq);
    sim.run(1);
    seq.restart();
    sim.run(1);
    EXPECT_EQ(runs, 2);
}

}  // namespace
