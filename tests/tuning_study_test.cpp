#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "math/rotation.hpp"
#include "system/fleet.hpp"
#include "system/tuning_study.hpp"

// The tuning-study sweep generator: grid expansion order and contents,
// config validation, and the report contract — the study JSON is a pure
// function of the config, so any thread count must render identical bytes.

namespace {

using namespace ob;
using math::EulerAngles;
using Processor = system::BoresightSystem::Processor;

system::TuningStudyConfig small_config() {
    system::TuningStudyConfig cfg;
    cfg.label = "unit";
    cfg.scenarios = {"static-level", "city-drive"};
    cfg.misalignments = {EulerAngles::from_deg(1.0, -1.0, 2.0),
                         EulerAngles::from_deg(3.0, 2.0, -4.0)};
    cfg.variants = {
        {.label = "spec"},
        {.label = "quiet", .meas_noise_mps2 = 0.003},
    };
    cfg.processors = {Processor::kNative, Processor::kSabre};
    cfg.duration_s = 10.0;
    return cfg;
}

// --- Expansion --------------------------------------------------------------

TEST(TuningStudy, ExpandsTheFullGridInDeterministicOrder) {
    const system::TuningStudy study(small_config());
    // 2 scenarios x 2 misalignments x 2 variants x 2 processors.
    ASSERT_EQ(study.cell_count(), 16u);
    const auto& jobs = study.jobs();
    // Scenario-major: the first 8 jobs are static-level, then city-drive.
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(jobs[i].scenario, "static-level") << i;
        EXPECT_EQ(jobs[8 + i].scenario, "city-drive") << i;
    }
    // Innermost axis is the processor.
    EXPECT_EQ(jobs[0].processor, Processor::kNative);
    EXPECT_EQ(jobs[1].processor, Processor::kSabre);
    // Variant axis flips every two jobs: "spec" keeps the spec noise,
    // "quiet" overrides it.
    EXPECT_FALSE(jobs[0].meas_noise_mps2.has_value());
    ASSERT_TRUE(jobs[2].meas_noise_mps2.has_value());
    EXPECT_EQ(*jobs[2].meas_noise_mps2, 0.003);
    // Misalignment axis flips every four.
    ASSERT_TRUE(jobs[0].misalignment.has_value());
    EXPECT_EQ(jobs[0].misalignment->roll, math::deg2rad(1.0));
    EXPECT_EQ(jobs[4].misalignment->roll, math::deg2rad(3.0));
    for (const auto& job : jobs) {
        EXPECT_EQ(job.duration_s, 10.0);
        EXPECT_FALSE(job.calibration.has_value());
    }
}

TEST(TuningStudy, EmptyMisalignmentAxisMeansSpecDefault) {
    auto cfg = small_config();
    cfg.misalignments.clear();
    const system::TuningStudy study(cfg);
    EXPECT_EQ(study.cell_count(), 8u);
    for (const auto& job : study.jobs()) {
        EXPECT_FALSE(job.misalignment.has_value());
    }
}

TEST(TuningStudy, CalibrationAndTunerPropagateToEveryJob) {
    auto cfg = small_config();
    cfg.processors = {Processor::kNative};  // adaptive variants: native-only
    cfg.calibration = system::FleetCalibration{12.0};
    cfg.variants.push_back({.label = "adaptive",
                            .use_adaptive_tuner = true,
                            .meas_noise_mps2 = 0.003});
    const system::TuningStudy study(cfg);
    std::size_t tuned = 0;
    for (const auto& job : study.jobs()) {
        ASSERT_TRUE(job.calibration.has_value());
        EXPECT_EQ(job.calibration->duration_s, 12.0);
        if (job.use_adaptive_tuner) {
            ++tuned;
            EXPECT_TRUE(job.tuner.has_value());
        }
    }
    // One variant in three is adaptive.
    EXPECT_EQ(tuned, study.cell_count() / 3);
}

// --- Validation -------------------------------------------------------------

TEST(TuningStudyValidation, RejectsBadAxes) {
    auto cfg = small_config();
    cfg.label.clear();
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = small_config();
    cfg.scenarios.clear();
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = small_config();
    cfg.scenarios.push_back("warp-drive");
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = small_config();
    cfg.variants.clear();
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = small_config();
    cfg.processors.clear();
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = small_config();
    cfg.duration_s = -1.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(TuningStudyValidation, RejectsBadVariants) {
    auto cfg = small_config();
    cfg.variants.push_back({.label = "spec"});  // duplicate label
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = small_config();
    cfg.variants[0].label.clear();
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = small_config();
    cfg.variants[0].meas_noise_mps2 = -0.01;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);

    cfg = small_config();
    cfg.processors = {Processor::kNative};
    cfg.variants[0].use_adaptive_tuner = true;
    cfg.variants[0].tuner.floor_mps2 = 0.0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    // The same bad knobs are ignored while the tuner is off.
    cfg.variants[0].use_adaptive_tuner = false;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(TuningStudyValidation, AcceptsAdaptiveVariantOnTheSabreAxis) {
    // The firmware's writable R register closed the "adaptive jobs
    // rejected on Sabre" gap: an adaptive variant may sweep both fusion
    // processors in one study.
    auto cfg = small_config();  // processors = {native, sabre}
    cfg.variants[0].use_adaptive_tuner = true;
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_NO_THROW((void)system::TuningStudy(cfg));
}

TEST(TuningStudyValidation, RejectsBadSeedCounts) {
    auto cfg = small_config();
    cfg.seeds_per_cell = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.seeds_per_cell = system::kFleetMaxSeedsPerJob + 1;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.seeds_per_cell = 4;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(TuningStudy, AdaptiveRetuneParityAcrossProcessors) {
    // §11 retune parity between the fusion processors: starting from the
    // quietest static tuning on the city drive, the adaptive loop must
    // climb out of the static band on the native EKF AND on the Sabre
    // firmware (via its writable R register), landing within one
    // raise-factor step of each other.
    system::TuningStudyConfig cfg;
    cfg.label = "retune-parity";
    cfg.scenarios = {"city-drive"};
    cfg.variants = {{.label = "adaptive",
                     .use_adaptive_tuner = true,
                     .meas_noise_mps2 = 0.003}};
    cfg.processors = {Processor::kNative, Processor::kSabre};
    cfg.duration_s = 60.0;
    const system::TuningStudy study(cfg);
    const auto report = study.run(system::FleetRunner({.threads = 2}));

    ASSERT_EQ(report.cells.size(), 2u);
    const auto& native = report.cells[0].result;
    const auto& sabre = report.cells[1].result;
    ASSERT_EQ(report.cells[0].processor_index, 0u);
    EXPECT_GE(native.final_status.tuner_adjustments, 3u);
    EXPECT_GE(sabre.final_status.tuner_adjustments, 3u);
    EXPECT_GE(native.result.meas_noise, 0.010);
    EXPECT_GE(sabre.result.meas_noise, 0.010);
    // Same exceedance statistic, same ladder: the firmware's landing point
    // must sit within one raise factor (1.5x) of the native EKF's.
    const double ratio = sabre.result.meas_noise / native.result.meas_noise;
    EXPECT_GT(ratio, 1.0 / 1.5);
    EXPECT_LT(ratio, 1.5);
}

TEST(TuningStudyValidation, RejectsBadCalibrationAndWideMisalignment) {
    auto cfg = small_config();
    cfg.calibration = system::FleetCalibration{0.0};
    EXPECT_THROW((void)system::TuningStudy(cfg), std::invalid_argument);

    cfg = small_config();
    cfg.misalignments.push_back(EulerAngles::from_deg(30.0, 0.0, 0.0));
    // Caught at job expansion: outside the EKF's small-angle regime.
    EXPECT_THROW((void)system::TuningStudy(cfg), std::invalid_argument);
}

// --- Report determinism and shape -------------------------------------------

TEST(TuningStudy, ReportJsonIsBitwiseIdenticalAcrossThreadCounts) {
    // The acceptance sweep: >= 3 scenarios x >= 3 tuner variants, with the
    // calibration phase and the adaptive tuner in play, through a serial
    // and a heavily parallel runner. The rendered report must be
    // byte-identical — scheduling must never leak into a study.
    system::TuningStudyConfig cfg;
    cfg.label = "determinism";
    cfg.scenarios = {"static-level", "city-drive", "highway-drive"};
    cfg.variants = {
        {.label = "spec"},
        {.label = "retuned", .meas_noise_mps2 = 0.015},
        {.label = "adaptive",
         .use_adaptive_tuner = true,
         .meas_noise_mps2 = 0.003},
    };
    cfg.calibration = system::FleetCalibration{10.0};
    cfg.duration_s = 30.0;
    // The Monte Carlo axis must be just as scheduling-free: two seed
    // realizations per cell ride along, sharing each cell's trace.
    cfg.seeds_per_cell = 2;
    const system::TuningStudy study(cfg);
    ASSERT_EQ(study.cell_count(), 9u);

    const auto serial = study.run(system::FleetRunner({.threads = 1}));
    const auto parallel = study.run(system::FleetRunner({.threads = 8}));
    EXPECT_EQ(serial.to_json(), parallel.to_json());
}

TEST(TuningStudy, SeedEnsembleReductionsLandInTheReport) {
    system::TuningStudyConfig cfg;
    cfg.label = "seed-axis";
    cfg.scenarios = {"static-level"};
    cfg.variants = {{.label = "spec"}};
    cfg.duration_s = 20.0;
    cfg.seeds_per_cell = 3;
    const system::TuningStudy study(cfg);
    ASSERT_EQ(study.jobs().size(), 1u);
    EXPECT_EQ(study.jobs()[0].seeds_per_job, 3u);

    const auto report = study.run(system::FleetRunner({.threads = 2}));
    ASSERT_EQ(report.cells.size(), 1u);
    const auto& stats = report.cells[0].result.seed_stats;
    EXPECT_EQ(stats.seeds, 3u);
    // Three distinct instrument realizations: the ensemble spread of the
    // residual RMS must be a real number (and almost surely nonzero).
    EXPECT_GT(stats.residual_rms.mean, 0.0);
    EXPECT_GT(stats.residual_rms.stddev, 0.0);

    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"seed_stats\""), std::string::npos);
    EXPECT_NE(json.find("\"ci95\""), std::string::npos);
    EXPECT_NE(json.find("\"seeds_per_cell\":3"), std::string::npos);
    EXPECT_NE(json.find("\"all_seeds_within_envelope\""), std::string::npos);
}

TEST(TuningStudy, ReportCarriesPerCellReductions) {
    system::TuningStudyConfig cfg;
    cfg.label = "shape";
    cfg.scenarios = {"static-level"};
    cfg.variants = {{.label = "spec"}, {.label = "quiet",
                                        .meas_noise_mps2 = 0.003}};
    cfg.duration_s = 20.0;
    const system::TuningStudy study(cfg);
    const auto report = study.run(system::FleetRunner({.threads = 2}));

    ASSERT_EQ(report.cells.size(), 2u);
    EXPECT_EQ(report.cells[0].variant_index, 0u);
    EXPECT_EQ(report.cells[1].variant_index, 1u);
    EXPECT_EQ(report.cells[0].result.scenario, "static-level");
    EXPECT_GT(report.cells[0].result.trace.epochs, 0u);
    // The quiet variant must actually carry the overridden noise.
    EXPECT_EQ(report.cells[1].result.result.meas_noise, 0.003);

    const std::string json = report.to_json();
    EXPECT_NE(json.find("\"study\":\"shape\""), std::string::npos);
    EXPECT_NE(json.find("\"cells\""), std::string::npos);
    EXPECT_NE(json.find("\"quiet\""), std::string::npos);
    EXPECT_NE(json.find("\"summary\""), std::string::npos);
}

}  // namespace
